"""Loose temporal synchrony: pacing threads against real time (paper §4.3).

    "a thread can declare real time 'ticks' at which it will re-synchronize
    with real time, along with a tolerance and an exception handler.  As the
    thread executes, after each 'tick', it performs a Stampede call
    attempting to synchronize with real time.  If it is early, the thread
    waits until that synchrony is achieved.  If it is late by more than the
    specified tolerance, Stampede calls the thread's registered exception
    handler which can attempt to recover from this slippage."

The digitizer of the vision pipeline paces itself with this API to grab
frames at 30 fps, using absolute frame numbers as timestamps.

The clock and sleep functions are injectable so the discrete-event simulator
and the tests can drive a pacer on virtual time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import RealTimeSlippageError

__all__ = ["TickStatus", "TickReport", "Pacer"]


from enum import Enum


class TickStatus(Enum):
    ON_TIME = "on_time"  # waited (or arrived exactly) — synchrony achieved
    LATE_OK = "late_ok"  # late, but within tolerance
    SLIPPED = "slipped"  # late beyond tolerance; handler invoked


@dataclass
class TickReport:
    """Outcome of one synchronization attempt."""

    tick: int
    status: TickStatus
    #: positive when the thread arrived late, negative when it waited.
    lateness: float
    #: scheduled absolute time of this tick.
    scheduled: float


class Pacer:
    """Re-synchronize a thread with real time at a fixed tick period.

    Parameters
    ----------
    period:
        Seconds of real time per virtual-time tick (the paper's
        ``spd_init`` mapping, e.g. 1/30 s per frame).
    tolerance:
        Allowed lateness in seconds before the slippage handler fires.
        Defaults to one period.
    handler:
        Called with a :class:`TickReport` on slippage.  The handler may
        return the number of ticks to skip (int >= 0) to drop frames and
        catch up; returning None re-anchors the schedule at the current
        time without skipping tick numbers.  Without a handler, slippage
        raises :class:`RealTimeSlippageError`.
    clock / sleep_fn:
        Time sources, injectable for simulation and tests.
    """

    def __init__(
        self,
        period: float,
        tolerance: float | None = None,
        handler: Callable[[TickReport], int | None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep_fn: Callable[[float], None] = time.sleep,
    ):
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        if tolerance is not None and tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        self.period = period
        self.tolerance = period if tolerance is None else tolerance
        self.handler = handler
        self._clock = clock
        self._sleep = sleep_fn
        self._origin: float | None = None
        self._tick = 0
        self.reports: list[TickReport] = []
        #: cumulative counters for monitoring.
        self.n_waits = 0
        self.n_late = 0
        self.n_slipped = 0
        self.n_skipped_ticks = 0

    @property
    def tick(self) -> int:
        """Index of the next tick to synchronize to."""
        return self._tick

    def start(self) -> None:
        """Anchor tick 0 at the current time (implicit on first wait)."""
        if self._origin is None:
            self._origin = self._clock()

    def wait_for_tick(self) -> TickReport:
        """Synchronize with the next tick; return what happened.

        Early -> sleep until the tick.  Late within tolerance -> proceed
        immediately.  Late beyond tolerance -> slippage: handler or raise.
        """
        self.start()
        self._tick += 1
        scheduled = self._origin + self._tick * self.period
        now = self._clock()
        lateness = now - scheduled

        if lateness <= 0:
            self._sleep(-lateness)
            self.n_waits += 1
            report = TickReport(self._tick, TickStatus.ON_TIME, lateness, scheduled)
        elif lateness <= self.tolerance:
            self.n_late += 1
            report = TickReport(self._tick, TickStatus.LATE_OK, lateness, scheduled)
        else:
            self.n_slipped += 1
            report = TickReport(self._tick, TickStatus.SLIPPED, lateness, scheduled)
            if self.handler is None:
                self.reports.append(report)
                raise RealTimeSlippageError(
                    f"tick {self._tick} missed by {lateness:.6f}s "
                    f"(tolerance {self.tolerance:.6f}s)",
                    lateness=lateness,
                )
            skip = self.handler(report)
            if skip is None:
                # Re-anchor: future ticks are scheduled relative to now.
                self._origin = now - self._tick * self.period
            else:
                if skip < 0:
                    raise ValueError(f"slippage handler returned {skip} (< 0)")
                self._tick += skip
                self.n_skipped_ticks += skip
        self.reports.append(report)
        return report
