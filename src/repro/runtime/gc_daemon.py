"""The distributed garbage collector (paper §4.2, §6).

    "Stampede's runtime system has a distributed algorithm that periodically
    recomputes this value [the global minimum] and garbage collects dead
    items."

Protocol (coordinator-based):

1. The daemon (running beside the coordinator space) starts epoch *e* and
   sends ``GcSummaryReq(e)`` to every address space.
2. Each space replies with its :class:`LocalGCSummary`: the visibilities of
   its threads plus the unconsumed minimum of every channel homed there.
3. The daemon folds the summaries into the global minimum and broadcasts a
   one-way ``GcCollectMsg(e, horizon)``.
4. Every space reclaims items below the horizon in its local channels
   (which can unblock bounded-channel puts).

Safety under concurrency does **not** require a consistent snapshot here,
because channel operations are synchronous RPCs: while a put is in flight
its producer is blocked, and the §4.2 rules keep that producer's visibility
at or below the put's timestamp, so some summary always reports a value
<= any timestamp that might still materialize.  (See the discussion in
:mod:`repro.runtime.messages`.)

Progress requires application discipline: threads must consume items and
advance their virtual times (§4.2); a thread sitting on a finite virtual
time forever pins the horizon, which :meth:`GcDaemon.stats` makes visible.

The eager **reference-count** algorithm of §6 is independent of this daemon:
it runs inline in the channel kernel whenever a consume drops a declared
count to zero.  The daemon is the backstop "run less frequently to garbage
collect items with unknown reference counts".
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.gc_state import merge_summaries
from repro.core.time import INFINITY, VirtualTime
from repro.obs import events as _obs
from repro.obs.metrics import DEFAULT_SECONDS_BUCKETS, REGISTRY
from repro.runtime.messages import GcApplyReq, GcSummaryReq
from repro.runtime.sync import make_lock

__all__ = ["GcStats", "GcDaemon"]


@dataclass
class GcStats:
    """Observability for GC behaviour (used by tests and the ablation bench)."""

    epochs: int = 0
    last_horizon: VirtualTime = 0
    total_collected: int = 0
    horizons: list[VirtualTime] = field(default_factory=list)


class GcDaemon:
    """Periodically recompute the global minimum and broadcast the horizon.

    Runs as a daemon thread next to the coordinator space.  ``period`` is
    the recomputation interval in seconds; :meth:`run_once` is public so
    tests and simulations can drive collection deterministically.
    """

    def __init__(self, cluster, period: float = 0.05):
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        self.cluster = cluster
        self.period = period
        self.stats = GcStats()
        self._epoch = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = make_lock("GcDaemon.lock")

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="stampede-gc-daemon", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.period):
            try:
                self.run_once()
            except Exception:
                # The cluster may be tearing down under us; a failed round
                # is harmless (the next one retries).
                if self._stop.is_set():
                    break

    # ------------------------------------------------------------------
    def run_once(self) -> VirtualTime:
        """One full GC round; returns the horizon that was broadcast."""
        with self._lock:
            self._epoch += 1
            epoch = self._epoch
            coordinator = self.cluster.space(self.cluster.registry_space)
            rec = _obs.recorder
            t_epoch = rec.now() if rec is not None else 0
            wall0 = time.perf_counter()
            # Scatter the summary requests to every space, then gather: the
            # epoch costs one max-of-RTTs instead of a sum of serial RTTs.
            pending = [
                coordinator.call_async(space_id, GcSummaryReq(epoch))
                for space_id in range(self.cluster.n_spaces)
            ]
            # The blocking gather runs under self._lock on purpose: the lock
            # serializes whole GC rounds, and the dispatcher threads that
            # serve the replies never take it.
            summaries = coordinator.gather(pending, timeout=10.0)  # stm-ok: STM103
            if rec is not None:
                rec.complete(
                    "gc", "gc.scatter", t_epoch, coordinator.space_id,
                    epoch=epoch, spaces=self.cluster.n_spaces,
                )
            horizon = merge_summaries(summaries)
            t_collect = rec.now() if rec is not None else 0
            collected = self._broadcast(coordinator, epoch, horizon)
            self.stats.epochs += 1
            self.stats.last_horizon = horizon
            self.stats.total_collected += collected
            self.stats.horizons.append(horizon)
            # Registry feeds are unconditional: this is a cold path (one
            # sample per epoch), and the cluster report shows GC timing even
            # when tracing is off.
            REGISTRY.histogram(
                "gc_epoch_seconds", buckets=DEFAULT_SECONDS_BUCKETS
            ).observe(time.perf_counter() - wall0)
            REGISTRY.counter("gc_collected_total").inc(collected)
            if rec is not None:
                rec.complete(
                    "gc", "gc.collect", t_collect, coordinator.space_id,
                    epoch=epoch, horizon=str(horizon), collected=collected,
                )
                rec.complete(
                    "gc", "gc.epoch", t_epoch, coordinator.space_id,
                    epoch=epoch, horizon=str(horizon), collected=collected,
                )
            return horizon

    def _broadcast(self, coordinator, epoch: int, horizon: VirtualTime) -> int:
        """Apply the horizon on every space (scatter/gather over CLF).

        Gathering before returning keeps ``run_once`` deterministic for
        callers: when it returns, every space has already collected.
        Returns the total number of items collected across the cluster this
        round.
        """
        if horizon is not INFINITY and horizon <= 0:
            return 0  # nothing below the horizon can exist
        pending = [
            coordinator.call_async(space_id, GcApplyReq(epoch, horizon))
            for space_id in range(self.cluster.n_spaces)
        ]
        return sum(coordinator.gather(pending, timeout=10.0))
