"""Stampede runtime: address spaces, cluster-wide threads, GC daemon, pacing."""

from repro.runtime.address_space import AddressSpace, ChannelHandle, LocalChannel
from repro.runtime.aio import AioAddressSpace, AioCluster, AioEvent
from repro.runtime.cluster import Cluster
from repro.runtime.gc_daemon import GcDaemon, GcStats
from repro.runtime.procs import ProcCluster
from repro.runtime.placement import (
    KIOSK_PIPELINE,
    PipelineModel,
    PlacementPrediction,
    Stage,
    optimal_placement,
    predict,
)
from repro.runtime.realtime import Pacer, TickReport, TickStatus
from repro.runtime.threads import StampedeThread, current_thread, require_current_thread

__all__ = [
    "AddressSpace",
    "AioAddressSpace",
    "AioCluster",
    "AioEvent",
    "ChannelHandle",
    "Cluster",
    "GcDaemon",
    "GcStats",
    "KIOSK_PIPELINE",
    "PipelineModel",
    "PlacementPrediction",
    "Stage",
    "LocalChannel",
    "Pacer",
    "ProcCluster",
    "StampedeThread",
    "TickReport",
    "TickStatus",
    "current_thread",
    "optimal_placement",
    "predict",
    "require_current_thread",
]
