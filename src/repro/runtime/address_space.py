"""Stampede address spaces: channel homes, RPC dispatch, cluster-wide threads.

An :class:`AddressSpace` is one of the cluster's protection domains (the
paper runs one per SMP).  It owns:

* the **channels homed here** — each a :class:`LocalChannel` pairing a
  :class:`~repro.core.channel_state.ChannelKernel` with two reason-keyed
  wait sets holding blocked operations, local and remote alike;
* the **Stampede threads** running here, whose visibilities feed GC;
* a **dispatcher thread** that serves incoming CLF messages: channel RPCs
  from other spaces, GC protocol traffic, spawn/join requests, and name
  registry operations (on the registry space).

Location transparency (§4): a thread operating on a channel homed in its own
space takes a direct, lock-protected fast path ("CLF exploits shared memory
within an SMP"); operations on remote channels become synchronous RPCs over
CLF.  Both paths run the *same* kernel code, so semantics cannot diverge.

Blocking — targeted wakeups: every blocked operation (local or remote) is
parked at the channel in one of two wait sets keyed by its
:class:`~repro.core.channel_state.BlockReason` — puts blocked on
``CHANNEL_FULL``, gets blocked on ``NO_MATCHING_ITEM``.  Whichever thread
changes channel state *completes the parked operations itself* under the
channel lock and wakes only the waiters whose operation finished: a put
retries parked getters, a consume/collect retries parked putters.  There is
no ``notify_all`` herd — a waiter is woken exactly once, with its result (or
error) already in hand.  Remote waiters get their reply sent the same way.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, ClassVar

from repro.analysis.sanitizer import guard_kernel
from repro.core.channel_state import BlockReason, ChannelKernel, Status
from repro.core.flags import GetWildcard, UNKNOWN_REFCOUNT
from repro.core.gc_state import LocalGCSummary
from repro.core.payload import CopyPolicy
from repro.core.time import INFINITY, VirtualTime, vt_min
from repro.errors import (
    AddressSpaceError,
    ChannelDestroyedError,
    ChannelEmptyError,
    ChannelFullError,
    NameInUseError,
    NoSuchChannelError,
    StampedeError,
)
from repro.obs import events as _obs
from repro.runtime.messages import (
    AttachReq,
    CachePushMsg,
    ConsumeReq,
    CreateChannelReq,
    DestroyChannelReq,
    DetachReq,
    EndpointStatsReq,
    GcApplyReq,
    GcCollectMsg,
    GcSummaryReq,
    GetReq,
    ClockProbeReq,
    LookupNameReq,
    PutReq,
    RegisterNameReq,
    RpcCancel,
    RpcReply,
    RpcRequest,
    ShutdownMsg,
    SpawnReq,
    TelemetryHarvestReq,
)
from repro.runtime.sync import make_event, make_lock
from repro.runtime.threads import StampedeThread, current_thread
from repro.transport.clf import ClfEndpoint
from repro.transport.serialization import (
    Frame,
    decode_message,
    encode_message_sg,
    frame_stats,
)
from repro.util.ids import IdAllocator

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

__all__ = ["ChannelHandle", "LocalChannel", "AddressSpace"]


@dataclass(frozen=True)
class ChannelHandle:
    """Portable reference to a channel anywhere in the cluster."""

    channel_id: int
    home_space: int
    name: str | None = None
    capacity: int | None = None
    copy_policy: CopyPolicy = CopyPolicy.SERIALIZE
    #: eager data push toward consumer spaces (the §9 optimization).
    push: bool = False


@dataclass(eq=False)
class _Waiter:
    """A blocked put or get parked at the channel home.

    Covers both kinds of blocker: a *remote* waiter carries the RPC routing
    (``call_id``/``src_space``) so the completed result can be sent as a
    reply; a *local* waiter carries an :class:`threading.Event` the blocked
    thread sleeps on plus result/error slots.  Either way the operation is
    finished *by the thread that changed channel state* — the waiter never
    retries anything itself.
    """

    body: Any  # PutReq | GetReq
    # remote waiters:
    call_id: int | None = None
    src_space: int | None = None
    # local waiters:
    event: threading.Event | None = None
    result: Any = None
    error: BaseException | None = None


class _GetWaitSet:
    """Parked gets, striped by requested timestamp.

    With one coroutine per camera, 10k gets can be parked on one channel;
    retrying every one of them on every put made the put path O(waiters)
    even though targeted wakeups complete exactly one.  Specific-timestamp
    requests are bucketed by timestamp, so an item arriving at T retries
    only T's bucket plus the wildcard waiters; semantic events (attach,
    detach, GC, destroy) still retry the full set via iteration.

    List-compatible where the runtime and benches touch it: ``len``,
    truthiness, iteration in park order, ``append``, identity ``remove``,
    ``clear``, and right-concatenation with the put-waiter list.
    """

    __slots__ = ("_seq", "_all", "_by_ts", "_wild")

    def __init__(self) -> None:
        self._seq = 0
        self._all: dict[int, tuple[int, _Waiter]] = {}   # id -> (seq, waiter)
        self._by_ts: dict[int, dict[int, _Waiter]] = {}  # ts -> {id: waiter}
        self._wild: dict[int, _Waiter] = {}              # wildcard requests

    def __len__(self) -> int:
        return len(self._all)

    def __bool__(self) -> bool:
        return bool(self._all)

    def __iter__(self):
        return iter([w for _seq, w in self._all.values()])

    def __radd__(self, other: list) -> list:
        return list(other) + list(self)

    def append(self, waiter: "_Waiter") -> None:
        self._all[id(waiter)] = (self._seq, waiter)
        self._seq += 1
        request = waiter.body.request
        if isinstance(request, int):
            self._by_ts.setdefault(request, {})[id(waiter)] = waiter
        else:
            self._wild[id(waiter)] = waiter

    def remove(self, waiter: "_Waiter") -> None:
        if self._all.pop(id(waiter), None) is None:
            raise ValueError("waiter is not parked here")
        request = waiter.body.request
        if isinstance(request, int):
            bucket = self._by_ts.get(request)
            if bucket is not None:
                bucket.pop(id(waiter), None)
                if not bucket:
                    del self._by_ts[request]
        else:
            self._wild.pop(id(waiter), None)

    def clear(self) -> None:
        self._all.clear()
        self._by_ts.clear()
        self._wild.clear()

    def candidates(self, timestamps: list[int]) -> list["_Waiter"]:
        """Waiters an item arrival at these timestamps could satisfy, in
        park order: the matching specific buckets plus every wildcard."""
        picked: dict[int, tuple[int, "_Waiter"]] = {}
        for ts in timestamps:
            for wid in self._by_ts.get(ts, ()):
                picked[wid] = self._all[wid]
        for wid in self._wild:
            picked[wid] = self._all[wid]
        return [w for _seq, w in sorted(picked.values(), key=lambda e: e[0])]


class LocalChannel:
    """A channel homed in this address space.

    Blocked operations park in one of two wait sets keyed by their
    :class:`~repro.core.channel_state.BlockReason`: ``put_waiters`` holds
    operations blocked on CHANNEL_FULL, ``get_waiters`` those blocked on
    NO_MATCHING_ITEM.  State changes drain only the set they can satisfy —
    and for pure item arrivals, only the get-waiter stripe the new
    timestamp can touch.
    """

    def __init__(self, kernel: ChannelKernel, handle: ChannelHandle):
        self.kernel = kernel
        self.handle = handle
        self.lock = make_lock("LocalChannel.lock")
        guard_kernel(kernel, self.lock)  # STMSAN only; no-op otherwise
        self.put_waiters: list[_Waiter] = []  # blocked on CHANNEL_FULL
        self.get_waiters = _GetWaitSet()      # blocked on NO_MATCHING_ITEM
        #: blocked operations completed (woken) since channel creation —
        #: under targeted wakeups this equals the number of blocked ops,
        #: never a multiple of it.
        self.waiters_woken = 0
        #: conn_id -> attaching space, for the eager-push optimization.
        self.input_spaces: dict[int, int] = {}

    @property
    def parked(self) -> list[_Waiter]:
        """The remote blockers currently parked here (diagnostics/tests)."""
        return [
            w for w in self.put_waiters + self.get_waiters
            if w.call_id is not None
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LocalChannel {self.handle.channel_id} items={len(self.kernel)}>"


@dataclass
class _Call:
    """Client-side state of an outstanding RPC."""

    event: threading.Event = field(default_factory=threading.Event)
    value: Any = None
    error: BaseException | None = None
    done: bool = False


@dataclass
class JoinReq:
    """Park until the named thread on the receiving space exits."""

    thread_name: str


class AddressSpace:
    """One Stampede address space: channels, threads, dispatcher, RPC client."""

    def __init__(self, cluster: "Cluster", space_id: int, endpoint: ClfEndpoint):
        self.cluster = cluster
        self.space_id = space_id
        self.endpoint = endpoint
        n = cluster.n_spaces
        self._channel_ids = IdAllocator(space_id, n)
        self._conn_ids = IdAllocator(space_id, n)
        self._call_ids = IdAllocator(space_id, n)
        self._channels: dict[int, LocalChannel] = {}
        self._channels_lock = make_lock("AddressSpace.channels")
        self._threads: dict[str, StampedeThread] = {}
        self._threads_lock = make_lock("AddressSpace.threads")
        self._thread_seq = IdAllocator(0, 1)
        self._calls: dict[int, _Call] = {}
        self._calls_lock = make_lock("AddressSpace.calls")
        self._parked_index: dict[int, LocalChannel] = {}  # call_id -> channel
        # The parked index is touched by the dispatcher (_serve_cancel) and
        # by whatever thread drains a waiter, under *different* channel
        # locks — it needs its own lock (found by repro.analysis.modelcheck).
        self._parked_lock = make_lock("AddressSpace.parked")
        self._pending_joins: dict[str, list[tuple[int, int]]] = {}
        # registry space only:
        self._names: dict[str, ChannelHandle] = {}
        self._name_waiters: dict[str, list[tuple[int, int]]] = {}
        #: name -> events of threads of THIS space blocked in a wait=True
        #: lookup (remote blockers park as RPCs in _name_waiters instead).
        self._local_name_events: dict[str, list[Any]] = {}
        self._registry_lock = make_lock("AddressSpace.registry")
        self._gc_horizon_applied: VirtualTime = 0
        # Guards the horizon watermark: concurrent GC applies (daemon round
        # racing an explicit gc_once) would otherwise lose the max-update.
        self._gc_horizon_lock = make_lock("AddressSpace.gc_horizon")
        #: (channel_id, timestamp) -> (payload, size): items eagerly pushed
        #: here by push-enabled channel homes (§9).
        self._push_cache: dict[tuple[int, int], tuple[Any, int]] = {}
        self._push_cache_lock = make_lock("AddressSpace.push_cache")
        self._dispatcher: threading.Thread | None = None
        self._running = False
        #: connections attached by threads of this space: conn_id ->
        #: (handle, thread) — used to auto-detach on thread exit.
        self._conn_owner: dict[int, tuple[ChannelHandle, StampedeThread]] = {}
        self._conn_owner_lock = make_lock("AddressSpace.conn_owner")

    # ==================================================================
    # lifecycle
    # ==================================================================
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name=f"stampede-dispatch-{self.space_id}",
            daemon=True,
        )
        self._dispatcher.start()

    def stop(self) -> None:
        """Local half of cluster shutdown: wake the dispatcher and join it."""
        if not self._running:
            return
        self._running = False
        self.endpoint.close()
        if self._dispatcher and self._dispatcher is not threading.current_thread():
            self._dispatcher.join(timeout=5.0)

    @property
    def is_registry(self) -> bool:
        return self.space_id == self.cluster.registry_space

    # ==================================================================
    # dispatcher
    # ==================================================================
    def _dispatch_loop(self) -> None:
        from repro.errors import TransportClosedError

        while self._running:
            try:
                src, data = self.endpoint.recv()
            except TransportClosedError:
                break
            try:
                msg = decode_message(data)
            except Exception:  # corrupt message: drop, keep serving
                continue
            if isinstance(msg, RpcReply):
                self._complete_call(msg)
            elif isinstance(msg, RpcRequest):
                self._serve_request(msg)
            elif isinstance(msg, RpcCancel):
                self._serve_cancel(msg)
            elif isinstance(msg, CachePushMsg):
                payload = msg.payload
                if isinstance(payload, Frame):
                    payload = payload.data
                with self._push_cache_lock:
                    self._push_cache[(msg.channel_id, msg.timestamp)] = (
                        payload, msg.size,
                    )
            elif isinstance(msg, GcCollectMsg):
                self.apply_gc_horizon(msg.horizon)
            elif isinstance(msg, ShutdownMsg):
                self._running = False
                break
        # Fail any calls still outstanding so client threads don't hang.  A
        # transport-level failure (peer process crashed, heartbeat lapsed)
        # is surfaced as such so callers can distinguish it from an orderly
        # shutdown.
        failure = getattr(self.endpoint, "failure", None)
        with self._calls_lock:
            for call in self._calls.values():
                if not call.done:
                    if failure is not None:
                        call.error = TransportClosedError(
                            f"address space {self.space_id}: call failed, "
                            f"{failure}"
                        )
                    else:
                        call.error = AddressSpaceError(
                            f"address space {self.space_id} shut down with "
                            f"the call outstanding"
                        )
                    call.done = True
                    call.event.set()

    def _serve_request(self, req: RpcRequest) -> None:
        try:
            result = self._handle(req.body, req.src_space, req.call_id)
        except BaseException as exc:  # noqa: BLE001 - forwarded to caller
            self._reply_error(req.src_space, req.call_id, exc)
            return
        if result is _PARKED:
            return  # reply comes later, from a drain
        self._reply_value(req.src_space, req.call_id, result)

    def _serve_cancel(self, msg: RpcCancel) -> None:
        with self._parked_lock:
            channel = self._parked_index.pop(msg.call_id, None)
        if channel is None:
            return  # already completed; the reply won the race
        with channel.lock:
            for waiters in (channel.put_waiters, channel.get_waiters):
                for waiter in list(waiters):
                    if waiter.call_id == msg.call_id:
                        waiters.remove(waiter)
                        self._reply_error(
                            waiter.src_space,
                            waiter.call_id,
                            TimeoutError("operation cancelled by caller timeout"),
                        )
                        return

    def _reply_value(self, dst: int, call_id: int, value: Any) -> None:
        self.endpoint.send(dst, encode_message_sg(RpcReply(call_id, value=value)))

    def _reply_error(self, dst: int, call_id: int, error: BaseException) -> None:
        self.endpoint.send(dst, encode_message_sg(RpcReply(call_id, error=error)))

    # ==================================================================
    # RPC client
    # ==================================================================
    def call(self, dst_space: int, body: Any, timeout: float | None = None) -> Any:
        """Synchronous RPC to another address space."""
        if dst_space == self.space_id:
            # Self-calls bypass the wire entirely (shared-memory fast path),
            # but still run the exact handler code.
            result = self._handle_blocking_locally(body, timeout)
            return result
        call_id = self._call_ids.next()
        call = _Call()
        with self._calls_lock:
            self._calls[call_id] = call
        self.endpoint.send(
            dst_space, encode_message_sg(RpcRequest(call_id, self.space_id, body))
        )
        if not call.event.wait(timeout):
            # Ask the server to abandon the parked request, then give the
            # reply (cancelled or real) a grace period to land.
            self.endpoint.send(dst_space, encode_message_sg(RpcCancel(call_id)))
            call.event.wait(5.0)
            if not call.done:
                with self._calls_lock:
                    self._calls.pop(call_id, None)
                raise TimeoutError(
                    f"RPC to space {dst_space} timed out after {timeout}s "
                    f"and the cancel was not acknowledged"
                )
        with self._calls_lock:
            self._calls.pop(call_id, None)
        if call.error is not None:
            raise call.error
        return call.value

    def call_async(self, dst_space: int, body: Any) -> tuple[int | None, _Call]:
        """Fire an RPC without waiting; pair with :meth:`gather`.

        Lets a coordinator scatter a request to every space and then wait
        for all replies together (max-of-RTTs instead of sum-of-RTTs — the
        GC daemon's epoch pattern).  Self-calls execute inline, so only
        non-blocking request bodies should be scattered.
        """
        call = _Call()
        if dst_space == self.space_id:
            try:
                call.value = self._handle_blocking_locally(body, None)
            except BaseException as exc:  # noqa: BLE001 - delivered at gather
                call.error = exc
            call.done = True
            call.event.set()
            return (None, call)
        call_id = self._call_ids.next()
        with self._calls_lock:
            self._calls[call_id] = call
        self.endpoint.send(
            dst_space, encode_message_sg(RpcRequest(call_id, self.space_id, body))
        )
        return (call_id, call)

    def gather(
        self,
        pending: list[tuple[int | None, _Call]],
        timeout: float | None = None,
    ) -> list[Any]:
        """Collect :meth:`call_async` results, in scatter order.

        ``timeout`` bounds the *total* wait across all replies.  The first
        error encountered is raised (after unregistering the remaining
        outstanding calls so late replies are dropped).
        """
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        results: list[Any] = []
        error: BaseException | None = None
        for call_id, call in pending:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            done = call.event.wait(remaining)
            if call_id is not None:
                with self._calls_lock:
                    self._calls.pop(call_id, None)
            if error is not None:
                continue  # keep unregistering the rest
            if not done:
                error = TimeoutError(
                    f"gather timed out after {timeout}s with replies outstanding"
                )
            elif call.error is not None:
                error = call.error
            else:
                results.append(call.value)
        if error is not None:
            raise error
        return results

    def _complete_call(self, reply: RpcReply) -> None:
        with self._calls_lock:
            call = self._calls.get(reply.call_id)
        if call is None or call.done:
            return  # late reply after cancel: drop
        call.value = reply.value
        call.error = reply.error
        call.done = True
        call.event.set()

    # ==================================================================
    # request handlers (run on the dispatcher thread, or inline for
    # same-space calls)
    # ==================================================================
    def _handle(self, body: Any, src_space: int, call_id: int | None) -> Any:
        handler = self._HANDLERS.get(type(body))
        if handler is None:
            raise AddressSpaceError(f"no handler for {type(body).__name__}")
        return handler(self, body, src_space, call_id)

    def _handle_blocking_locally(self, body: Any, timeout: float | None) -> Any:
        """Execute a request for a thread of this very space.

        Blocking puts/gets wait on the channel condition variable instead of
        being parked (there is no reply to defer).
        """
        if isinstance(body, PutReq):
            return self._local_put(body, timeout)
        if isinstance(body, GetReq):
            return self._local_get(body, timeout)
        if isinstance(body, (LookupNameReq,)) and body.wait:
            return self._local_lookup_wait(body, timeout)
        if isinstance(body, JoinReq):
            return self._local_join(body, timeout)
        result = self._handle(body, self.space_id, None)
        if result is _PARKED:  # pragma: no cover - defensive
            raise AddressSpaceError("local request parked unexpectedly")
        return result

    # -- channel management ------------------------------------------------
    def _h_create_channel(self, body: CreateChannelReq, src: int, cid) -> ChannelHandle:
        channel_id = self._channel_ids.next()
        handle = ChannelHandle(
            channel_id=channel_id,
            home_space=self.space_id,
            name=body.name,
            capacity=body.capacity,
            push=body.push,
        )
        kernel = ChannelKernel(channel_id, capacity=body.capacity)
        with self._channels_lock:
            self._channels[channel_id] = LocalChannel(kernel, handle)
        return handle

    def _h_destroy_channel(self, body: DestroyChannelReq, src: int, cid) -> None:
        channel = self._channel(body.channel_id)
        with channel.lock:
            for waiter in channel.put_waiters + channel.get_waiters:
                if waiter.call_id is not None:
                    error: BaseException = StampedeError(
                        "channel destroyed while operation blocked"
                    )
                else:
                    error = ChannelDestroyedError(
                        f"channel {body.channel_id} is destroyed"
                    )
                self._fail_waiter(channel, waiter, error)
            channel.put_waiters.clear()
            channel.get_waiters.clear()
            channel.kernel.destroy()
        with self._channels_lock:
            self._channels.pop(body.channel_id, None)

    def _h_attach(self, body: AttachReq, src: int, cid) -> None:
        channel = self._channel(body.channel_id)
        with channel.lock:
            if body.is_input:
                channel.kernel.attach_input(body.conn_id, body.visibility)
                channel.input_spaces[body.conn_id] = src
            else:
                channel.kernel.attach_output(body.conn_id)
            # Attach/detach change the connection set both sides key off, so
            # both wait sets are retried (rare, cold path).
            self._drain_locked(channel, puts=True, gets=True)

    def _h_detach(self, body: DetachReq, src: int, cid) -> None:
        channel = self._channel(body.channel_id)
        with channel.lock:
            channel.kernel.detach(body.conn_id)
            channel.input_spaces.pop(body.conn_id, None)
            self._drain_locked(channel, puts=True, gets=True)

    # -- puts/gets/consumes --------------------------------------------------
    def _h_put(self, body: PutReq, src: int, call_id) -> Any:
        channel = self._channel(body.channel_id)
        if isinstance(body.payload, Frame):
            # Out-of-band framed payload: store the raw bytes.  Mutating the
            # body keeps drain retries (which replay it) unwrapped too.
            body.payload = body.payload.data
        with channel.lock:
            result = channel.kernel.put(
                body.conn_id, body.timestamp, body.payload, body.size, body.refcount
            )
            if result.status is Status.OK:
                self._maybe_push(channel, body.timestamp)
                # A put only adds an item: it can satisfy blocked gets (and
                # only those parked on this timestamp or a wildcard), never
                # unblock another put.
                self._drain_locked(channel, puts=False, gets=True,
                                   put_ts=body.timestamp)
                return None
            if not body.block:
                raise ChannelFullError(
                    f"channel {body.channel_id} is full "
                    f"(capacity {channel.kernel.capacity})"
                )
            self._park(channel, _Waiter(body, call_id=call_id, src_space=src),
                       result.reason)
            return _PARKED

    def _h_get(self, body: GetReq, src: int, call_id) -> Any:
        channel = self._channel(body.channel_id)
        with channel.lock:
            result = channel.kernel.get(body.conn_id, body.request)
            if result.status is Status.OK:
                # A get changes no state another operation waits on: nothing
                # to drain, nobody to wake.
                return self._get_reply(channel, body, result, src)
            if not body.block:
                raise ChannelEmptyError(
                    f"no item matching {body.request!r} in channel "
                    f"{body.channel_id}; neighbours {result.timestamp_range}"
                )
            self._park(channel, _Waiter(body, call_id=call_id, src_space=src),
                       result.reason)
            return _PARKED

    def _h_consume(self, body: ConsumeReq, src: int, cid) -> None:
        channel = self._channel(body.channel_id)
        with channel.lock:
            if body.until:
                channel.kernel.consume_until(body.conn_id, body.timestamp)
            else:
                channel.kernel.consume(body.conn_id, body.timestamp)
            # A consume can only reclaim space: it unblocks puts (and, via a
            # completed put, transitively gets — _drain_locked cascades).
            self._drain_locked(channel, puts=True, gets=False)

    def _park(self, channel: LocalChannel, waiter: _Waiter,
              reason: BlockReason | None) -> None:
        """File a blocked operation in the wait set its BlockReason selects."""
        if reason is BlockReason.CHANNEL_FULL:
            channel.put_waiters.append(waiter)
        else:  # NO_MATCHING_ITEM
            channel.get_waiters.append(waiter)
        if waiter.call_id is not None:
            with self._parked_lock:
                self._parked_index[waiter.call_id] = channel

    def _drain_locked(self, channel: LocalChannel, *,
                      puts: bool, gets: bool,
                      put_ts: int | None = None) -> None:
        """Complete parked operations a state change may have unblocked.

        Runs with the channel lock held, on whichever thread changed the
        channel.  Only the wait set(s) the change can satisfy are retried;
        when a parked put completes it adds an item, so the get set is then
        drained too (the cascade never goes the other way — a completed get
        frees nothing).  Waiters whose operation finished (or raised) are
        woken exactly once, result in hand.

        ``put_ts`` marks the drain as a *pure item arrival* at that
        timestamp.  Arrivals (direct or via completed parked puts) retry
        only the get-waiter stripe their timestamps select — the matching
        specific-timestamp buckets plus the wildcards — because adding an
        item cannot change the outcome of a get parked on a different
        timestamp.  Semantic events (attach, detach, GC, visibility,
        destroy) pass ``gets=True`` without ``put_ts`` and retry everyone.
        """
        full_gets = gets and put_ts is None
        landed: list[int] = [put_ts] if put_ts is not None else []
        if puts and channel.put_waiters:
            landed += self._drain_puts(channel)
        if not channel.get_waiters:
            return
        if full_gets:
            candidates: list[_Waiter] = list(channel.get_waiters)
        elif landed:
            candidates = channel.get_waiters.candidates(landed)
        else:
            return
        if candidates:
            self._drain_gets(channel, candidates)

    def _drain_puts(self, channel: LocalChannel) -> list[int]:
        """Retry every parked put; return the timestamps that landed."""
        still_parked: list[_Waiter] = []
        landed: list[int] = []
        for waiter in channel.put_waiters:
            body = waiter.body
            try:
                result = channel.kernel.put(
                    body.conn_id,
                    body.timestamp,
                    body.payload,
                    body.size,
                    body.refcount,
                )
            except BaseException as exc:  # noqa: BLE001 - forwarded
                self._fail_waiter(channel, waiter, exc)
                continue
            if result.status is Status.OK:
                self._maybe_push(channel, body.timestamp)
                self._complete_waiter(channel, waiter, None)
                landed.append(body.timestamp)
            else:
                still_parked.append(waiter)
        channel.put_waiters[:] = still_parked
        return landed

    def _drain_gets(self, channel: LocalChannel,
                    candidates: list[_Waiter]) -> None:
        """Retry candidate parked gets, unparking the ones that finish."""
        for waiter in candidates:
            body = waiter.body
            try:
                result = channel.kernel.get(body.conn_id, body.request)
                if result.status is not Status.OK:
                    continue  # still blocked; stays parked
                requester = (
                    waiter.src_space if waiter.src_space is not None
                    else self.space_id
                )
                reply = self._get_reply(channel, body, result, requester)
            except BaseException as exc:  # noqa: BLE001 - forwarded
                channel.get_waiters.remove(waiter)
                self._fail_waiter(channel, waiter, exc)
                continue
            channel.get_waiters.remove(waiter)
            self._complete_waiter(channel, waiter, reply)

    def _complete_waiter(self, channel: LocalChannel, waiter: _Waiter,
                         value: Any) -> None:
        """Deliver a result to a parked operation and wake it (lock held)."""
        channel.waiters_woken += 1
        rec = _obs.recorder
        if rec is not None:
            rec.instant(
                "stm", "wakeup", self.space_id,
                channel=channel.kernel.channel_id,
                remote=waiter.event is None,
            )
        if waiter.event is not None:  # local blocker
            waiter.result = value
            waiter.event.set()
        else:
            with self._parked_lock:
                self._parked_index.pop(waiter.call_id, None)
            self._reply_value(waiter.src_space, waiter.call_id, value)

    def _fail_waiter(self, channel: LocalChannel, waiter: _Waiter,
                     error: BaseException) -> None:
        """Deliver an error to a parked operation and wake it (lock held)."""
        channel.waiters_woken += 1
        rec = _obs.recorder
        if rec is not None:
            rec.instant(
                "stm", "wakeup", self.space_id,
                channel=channel.kernel.channel_id,
                remote=waiter.event is None, error=type(error).__name__,
            )
        if waiter.event is not None:  # local blocker
            waiter.error = error
            waiter.event.set()
        else:
            with self._parked_lock:
                self._parked_index.pop(waiter.call_id, None)
            self._reply_error(waiter.src_space, waiter.call_id, error)

    def _maybe_push(self, channel: LocalChannel, timestamp: int) -> None:
        """Eagerly forward a fresh item to consumer spaces (§9; lock held).

        CLF's per-link FIFO guarantees the push lands at each space before
        any later get reply that omits the payload.
        """
        if not channel.handle.push:
            return
        record = channel.kernel.items.get(timestamp)
        if record is None:
            return  # reclaimed already (e.g. refcount 0)
        targets = {
            space for space in channel.input_spaces.values()
            if space != self.space_id
        }
        if not targets:
            return
        if record.pushed_to is None:
            record.pushed_to = set()
        payload = record.payload
        if channel.handle.copy_policy is CopyPolicy.SERIALIZE and isinstance(
            payload, (bytes, bytearray, memoryview)
        ):
            payload = Frame(payload)
        msg = encode_message_sg(CachePushMsg(
            channel.kernel.channel_id, timestamp, payload, record.size,
        ))
        for space in targets:
            self.endpoint.send(space, msg)
            record.pushed_to.add(space)

    def _get_reply(self, channel: LocalChannel, body: GetReq, result,
                   requester: int) -> tuple:
        """Build a get reply: ``(payload, ts, size, from_cache)``.

        The payload is omitted when the requester declared cache capability
        and this item was pushed to its space.
        """
        record = channel.kernel.items.get(result.timestamp)
        if (
            body.cache_ok
            and record is not None
            and record.pushed_to is not None
            and requester in record.pushed_to
        ):
            return (None, result.timestamp, result.size, True)
        payload = result.payload
        if (
            requester != self.space_id
            and channel.handle.copy_policy is CopyPolicy.SERIALIZE
            and isinstance(payload, (bytes, bytearray, memoryview))
        ):
            payload = Frame(payload)
        return (payload, result.timestamp, result.size, False)

    def _make_event(self) -> Any:
        """Event a local parked waiter sleeps on.

        Default: the :mod:`repro.runtime.sync` factory (threading.Event, or
        the model checker's cooperative event).  The asyncio space overrides
        this with a dual sync/awaitable event so coroutine callers can await
        the same waiter the drain code sets — the per-space end of the PR 3
        virtualization seam.
        """
        return make_event()

    # -- local blocking fast paths ------------------------------------------
    #
    # Each path is split into a *start* phase (run the kernel op under the
    # channel lock; complete, fail fast, or park a waiter) and an *await*
    # phase (sleep on the waiter's event).  The split is the seam the
    # asyncio runtime (:mod:`repro.runtime.aio`) builds on: it reuses the
    # start phase verbatim and substitutes a coroutine await for the
    # blocking event wait, so the kernel/parking code cannot diverge
    # between the thread and coroutine drivers.
    def _local_put_start(self, body: PutReq) -> tuple[LocalChannel, _Waiter | None]:
        """Kernel put under the lock; ``waiter is None`` means completed."""
        channel = self._channel(body.channel_id)
        with channel.lock:
            result = channel.kernel.put(
                body.conn_id, body.timestamp, body.payload, body.size, body.refcount
            )
            if result.status is Status.OK:
                self._maybe_push(channel, body.timestamp)
                self._drain_locked(channel, puts=False, gets=True,
                                   put_ts=body.timestamp)
                return channel, None
            if not body.block:
                raise ChannelFullError(
                    f"channel {body.channel_id} is full "
                    f"(capacity {channel.kernel.capacity})"
                )
            waiter = _Waiter(body, event=self._make_event())
            self._park(channel, waiter, result.reason)
        return channel, waiter

    def _local_get_start(
        self, body: GetReq
    ) -> tuple[LocalChannel, _Waiter | None, Any]:
        """Kernel get under the lock; completed result in the third slot."""
        channel = self._channel(body.channel_id)
        with channel.lock:
            result = channel.kernel.get(body.conn_id, body.request)
            if result.status is Status.OK:
                return (
                    channel,
                    None,
                    (result.payload, result.timestamp, result.size, False),
                )
            if not body.block:
                raise ChannelEmptyError(
                    f"no item matching {body.request!r} in channel "
                    f"{body.channel_id}; neighbours {result.timestamp_range}"
                )
            waiter = _Waiter(body, event=self._make_event())
            self._park(channel, waiter, result.reason)
        return channel, waiter, None

    def _local_put(self, body: PutReq, timeout: float | None) -> None:
        channel, waiter = self._local_put_start(body)
        if waiter is None:
            return None
        return self._await_local(channel, waiter, timeout, "put")

    def _local_get(self, body: GetReq, timeout: float | None):
        channel, waiter, done = self._local_get_start(body)
        if waiter is None:
            return done
        return self._await_local(channel, waiter, timeout, "get")

    @staticmethod
    def _withdraw_local_waiter(channel: LocalChannel, waiter: _Waiter,
                               op: str) -> None:
        """Remove a timed-out waiter under the lock, raising TimeoutError.

        Finding the waiter already gone means a completion won the race and
        must be honoured (the caller then reads the result/error slots).
        """
        with channel.lock:
            for waiters in (channel.put_waiters, channel.get_waiters):
                for parked in waiters:
                    if parked is waiter:
                        waiters.remove(parked)
                        raise TimeoutError(f"blocking {op} timed out")

    @staticmethod
    def _await_local(channel: LocalChannel, waiter: _Waiter,
                     timeout: float | None, op: str) -> Any:
        """Sleep until a drain completes this thread's parked operation.

        The draining thread removes the waiter from its wait set, fills the
        result/error slot and sets the event — all under the channel lock —
        so once the event fires the outcome is final.  On timeout, the
        waiter is withdrawn under the lock; finding it already gone means a
        completion won the race and must be honoured.
        """
        rec = _obs.recorder
        t0 = rec.now() if rec is not None else 0
        woke = waiter.event.wait(timeout)
        if rec is not None:
            rec.complete(
                "stm", f"block({op})", t0, channel.handle.home_space,
                channel=channel.handle.name or f"#{channel.kernel.channel_id}",
                woke=woke,
            )
        if not woke:
            AddressSpace._withdraw_local_waiter(channel, waiter, op)
        if waiter.error is not None:
            raise waiter.error
        return waiter.result

    # -- name registry (registry space only) -----------------------------
    def _h_register_name(self, body: RegisterNameReq, src: int, cid) -> None:
        self._require_registry()
        handle: ChannelHandle = body.handle
        with self._registry_lock:
            if body.name in self._names:
                raise NameInUseError(
                    f"channel name {body.name!r} already registered"
                )
            self._names[body.name] = handle
            waiters = self._name_waiters.pop(body.name, [])
            local_events = self._local_name_events.pop(body.name, [])
        for waiter_call, waiter_src in waiters:
            self._reply_value(waiter_src, waiter_call, handle)
        for event in local_events:
            event.set()

    def _h_lookup_name(self, body: LookupNameReq, src: int, call_id) -> Any:
        self._require_registry()
        with self._registry_lock:
            handle = self._names.get(body.name)
            if handle is not None:
                return handle
            if not body.wait:
                raise NoSuchChannelError(f"no channel named {body.name!r}")
            self._name_waiters.setdefault(body.name, []).append((call_id, src))
        return _PARKED

    def _local_lookup_start(self, body: LookupNameReq):
        """Check the registry; returns ``(handle, None)`` or ``(None, event)``.

        When the name is unknown, an event is registered in
        ``_local_name_events`` under the registry lock — `_h_register_name`
        sets it after publishing the handle, so there is no
        check-then-sleep window.  The caller waits on the event (blocking
        here, awaiting in the asyncio space) and re-checks.
        """
        with self._registry_lock:
            handle = self._names.get(body.name)
            if handle is not None:
                return handle, None
            event = self._make_event()
            self._local_name_events.setdefault(body.name, []).append(event)
        return None, event

    def _local_lookup_withdraw(self, body: LookupNameReq, event: Any) -> None:
        with self._registry_lock:
            events = self._local_name_events.get(body.name)
            if events is not None and event in events:
                events.remove(event)
                if not events:
                    del self._local_name_events[body.name]

    def _local_lookup_wait(self, body: LookupNameReq, timeout: float | None):
        """Blocking lookup when the registry is this very space."""
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        while True:
            handle, event = self._local_lookup_start(body)
            if handle is not None:
                return handle
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._local_lookup_withdraw(body, event)
                    raise TimeoutError(
                        f"channel name {body.name!r} never registered"
                    )
            woke = event.wait(remaining)
            self._local_lookup_withdraw(body, event)
            if not woke and deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"channel name {body.name!r} never registered")

    def _require_registry(self) -> None:
        if not self.is_registry:
            raise AddressSpaceError(
                f"space {self.space_id} is not the registry space "
                f"({self.cluster.registry_space})"
            )

    # -- spawn / join ---------------------------------------------------------
    def _h_spawn(self, body: SpawnReq, src: int, cid) -> str:
        thread = self._spawn_local(
            body.fn,
            body.args,
            body.kwargs,
            name=body.name,
            virtual_time=body.virtual_time if body.virtual_time is not None else 0,
            parent=None,  # cross-space parent rule enforced at the caller
        )
        return thread.name

    def _h_join(self, body: JoinReq, src: int, call_id) -> Any:
        with self._threads_lock:
            thread = self._threads.get(body.thread_name)
            if thread is None:
                return None  # already exited (or never existed)
            self._pending_joins.setdefault(body.thread_name, []).append(
                (call_id, src)
            )
        return _PARKED

    def _local_join(self, body: JoinReq, timeout: float | None) -> None:
        with self._threads_lock:
            thread = self._threads.get(body.thread_name)
        if thread is not None:
            thread.join(timeout)

    def _h_gc_summary(self, body: GcSummaryReq, src: int, cid) -> LocalGCSummary:
        return self.gc_summary(body.epoch)

    def _h_gc_apply(self, body, src: int, cid) -> int:
        return self.apply_gc_horizon(body.horizon)

    def _h_endpoint_stats(self, body: EndpointStatsReq, src: int, cid) -> dict:
        snap = {
            "clf": self.endpoint.stats.snapshot(),
            "frames": frame_stats.snapshot(),
        }
        if body.reset_frames:
            frame_stats.reset()
        return snap

    def _h_telemetry_harvest(self, body: TelemetryHarvestReq, src: int, cid):
        from repro.obs.collect import snapshot_local

        telemetry = snapshot_local(space=self.space_id)
        if body.disarm:
            _obs.disable()
        return telemetry

    def _h_clock_probe(self, body: ClockProbeReq, src: int, cid):
        return time.perf_counter_ns()

    _HANDLERS: ClassVar[dict[type, Callable]] = {}

    # ==================================================================
    # public API used by the STM facade and the cluster
    # ==================================================================
    def spawn(
        self,
        fn: Callable,
        args: tuple = (),
        kwargs: dict | None = None,
        *,
        name: str | None = None,
        virtual_time: VirtualTime | None = None,
        on_space: int | None = None,
    ) -> "StampedeThread | RemoteThreadHandle":
        """Create a Stampede thread, here or on another space.

        The child's initial virtual time defaults to the parent's current
        visibility (the smallest legal value per §4.2); passing INFINITY is
        the common choice for interior pipeline threads.
        """
        parent = current_thread()
        if virtual_time is None:
            # Default to the smallest legal initial VT: the parent's current
            # visibility (§4.2), or 0 for a root thread.  INFINITY must be
            # opted into explicitly — it is irreversible (a thread can never
            # lower its VT below its visibility), which makes it wrong as a
            # default for threads that produce timestamps of their own.
            virtual_time = parent.visibility() if parent is not None else 0
        if on_space is None or on_space == self.space_id:
            return self._spawn_local(
                fn, args, kwargs or {}, name=name, virtual_time=virtual_time,
                parent=parent,
            )
        remote_name = self.call(
            on_space,
            SpawnReq(fn=fn, args=args, kwargs=kwargs or {}, name=name,
                     virtual_time=virtual_time),
        )
        return RemoteThreadHandle(self, on_space, remote_name)

    def _spawn_local(
        self,
        fn: Callable,
        args: tuple,
        kwargs: dict,
        *,
        name: str | None,
        virtual_time: VirtualTime,
        parent: StampedeThread | None,
    ) -> StampedeThread:
        if name is None:
            name = f"spd-{self.space_id}-{self._thread_seq.next()}"
        with self._threads_lock:
            if name in self._threads:
                raise StampedeError(
                    f"thread name {name!r} already in use on space {self.space_id}"
                )
            thread = StampedeThread(self, name, virtual_time, parent=parent)
            self._threads[name] = thread
        os_thread = threading.Thread(
            target=thread._run, args=(fn, args, kwargs), name=name, daemon=True
        )
        thread.os_thread = os_thread
        os_thread.start()
        return thread

    def adopt_current_thread(
        self, virtual_time: VirtualTime = 0, name: str | None = None
    ) -> StampedeThread:
        """Bind STM thread state to the calling OS thread (e.g. __main__).

        The default virtual time of 0 lets the adopted thread put at any
        timestamp; remember to advance it (or jump to INFINITY once the
        thread only inherits timestamps) so GC can progress (§4.2).
        """
        existing = current_thread()
        if existing is not None and existing.alive:
            if existing.space is self:
                return existing
            if existing.space.cluster is self.cluster:
                raise StampedeError(
                    f"this OS thread is already adopted by space "
                    f"{existing.space.space_id}; call exit() on that "
                    f"StampedeThread before adopting into space {self.space_id}"
                )
            # The binding points into a different (likely shut down) cluster:
            # a stale leftover.  Unbind it and adopt fresh.
            existing.exit()
        if name is None:
            name = f"adopted-{self.space_id}-{self._thread_seq.next()}"
        with self._threads_lock:
            thread = StampedeThread(self, name, virtual_time)
            self._threads[name] = thread
        thread.os_thread = threading.current_thread()
        thread._bind()
        return thread

    def _thread_exited(self, thread: StampedeThread) -> None:
        # Auto-detach any connections the thread left attached so they stop
        # pinning the GC minimum.
        leaked: list[int] = []
        with self._conn_owner_lock:
            for conn_id, (_handle, owner) in list(self._conn_owner.items()):
                if owner is thread:
                    leaked.append(conn_id)
        for conn_id in leaked:
            handle, _ = self._conn_owner.get(conn_id, (None, None))
            if handle is not None:
                try:
                    self.detach(handle, conn_id)
                except StampedeError:
                    pass
        with self._threads_lock:
            self._threads.pop(thread.name, None)
            joins = self._pending_joins.pop(thread.name, [])
        for call_id, src in joins:
            self._reply_value(src, call_id, None)

    def join_thread(
        self, space: int, name: str, timeout: float | None = None
    ) -> None:
        self.call(space, JoinReq(name), timeout=timeout)

    def threads(self) -> list[StampedeThread]:
        with self._threads_lock:
            return list(self._threads.values())

    # -- channel operations (facade entry points) --------------------------
    def create_channel(
        self,
        name: str | None = None,
        capacity: int | None = None,
        home: int | None = None,
        copy_policy: CopyPolicy = CopyPolicy.SERIALIZE,
        push: bool = False,
    ) -> ChannelHandle:
        home = self.space_id if home is None else home
        if copy_policy is not CopyPolicy.SERIALIZE and home != self.space_id:
            raise StampedeError(
                f"copy policy {copy_policy.value} is local-only; channel must "
                f"be homed in the creating space"
            )
        if push and copy_policy is not CopyPolicy.SERIALIZE:
            raise StampedeError("eager push requires the SERIALIZE copy policy")
        handle: ChannelHandle = self.call(
            home, CreateChannelReq(name, capacity, push)
        )
        handle = ChannelHandle(
            channel_id=handle.channel_id,
            home_space=handle.home_space,
            name=name,
            capacity=capacity,
            copy_policy=copy_policy,
            push=push,
        )
        if home == self.space_id:
            # record the policy on the local channel object
            self._channel(handle.channel_id).handle = handle
        if name is not None:
            self.call(self.cluster.registry_space, RegisterNameReq(name, handle))
            self.cluster._note_named_handle(handle)
        return handle

    def lookup_channel(
        self, name: str, wait: bool = False, timeout: float | None = None
    ) -> ChannelHandle:
        handle = self.cluster._named_handle(name)
        if handle is not None:
            return handle
        handle = self.call(
            self.cluster.registry_space, LookupNameReq(name, wait), timeout=timeout
        )
        self.cluster._note_named_handle(handle)
        return handle

    def destroy_channel(self, handle: ChannelHandle) -> None:
        self.call(handle.home_space, DestroyChannelReq(handle.channel_id))

    def attach(
        self,
        handle: ChannelHandle,
        *,
        is_input: bool,
        thread: StampedeThread,
    ) -> int:
        if (
            handle.copy_policy is not CopyPolicy.SERIALIZE
            and handle.home_space != self.space_id
        ):
            raise StampedeError(
                f"channel {handle.channel_id} uses local-only copy policy "
                f"{handle.copy_policy.value}; cannot attach from space "
                f"{self.space_id}"
            )
        conn_id = self._conn_ids.next()
        visibility = thread.visibility() if is_input else None
        self.call(
            handle.home_space,
            AttachReq(handle.channel_id, conn_id, is_input, visibility),
        )
        with self._conn_owner_lock:
            self._conn_owner[conn_id] = (handle, thread)
        return conn_id

    def detach(self, handle: ChannelHandle, conn_id: int) -> None:
        with self._conn_owner_lock:
            self._conn_owner.pop(conn_id, None)
        self.call(handle.home_space, DetachReq(handle.channel_id, conn_id))

    def put(
        self,
        handle: ChannelHandle,
        conn_id: int,
        timestamp: int,
        payload: Any,
        size: int,
        refcount: int = UNKNOWN_REFCOUNT,
        block: bool = True,
        timeout: float | None = None,
    ) -> None:
        if (
            handle.home_space != self.space_id
            and handle.copy_policy is CopyPolicy.SERIALIZE
            and isinstance(payload, (bytes, bytearray, memoryview))
        ):
            # Ship encoded payloads out-of-band: one memcpy each way.
            payload = Frame(payload)
        self.call(
            handle.home_space,
            PutReq(handle.channel_id, conn_id, timestamp, payload, size,
                   refcount, block),
            timeout=timeout,
        )

    def get(
        self,
        handle: ChannelHandle,
        conn_id: int,
        request: int | GetWildcard,
        block: bool = True,
        timeout: float | None = None,
    ) -> tuple[Any, int, int]:
        cache_ok = handle.push and handle.home_space != self.space_id
        payload, ts, size, cached = self.call(
            handle.home_space,
            GetReq(handle.channel_id, conn_id, request, block, cache_ok),
            timeout=timeout,
        )
        if cached:
            with self._push_cache_lock:
                entry = self._push_cache.get((handle.channel_id, ts))
            if entry is not None:
                return (entry[0], ts, size)
            # The push should have arrived first (per-link FIFO); if the
            # cache was purged in between, re-fetch the payload explicitly.
            payload, ts, size, _ = self.call(
                handle.home_space,
                GetReq(handle.channel_id, conn_id, ts, block, False),
                timeout=timeout,
            )
        if isinstance(payload, Frame):
            payload = payload.data
        return (payload, ts, size)

    def consume(
        self, handle: ChannelHandle, conn_id: int, timestamp: int, until: bool = False
    ) -> None:
        self.call(
            handle.home_space,
            ConsumeReq(handle.channel_id, conn_id, timestamp, until),
        )

    def _channel(self, channel_id: int) -> LocalChannel:
        with self._channels_lock:
            channel = self._channels.get(channel_id)
        if channel is None:
            raise NoSuchChannelError(
                f"channel {channel_id} is not homed in space {self.space_id}"
            )
        return channel

    def local_channels(self) -> list[LocalChannel]:
        with self._channels_lock:
            return list(self._channels.values())

    # -- garbage collection -------------------------------------------------
    def gc_summary(self, epoch: int = 0) -> LocalGCSummary:
        """This space's contribution to the global GC minimum."""
        visibilities = [t.visibility() for t in self.threads()]
        channel_mins: dict[int, VirtualTime] = {}
        for channel in self.local_channels():
            with channel.lock:
                channel_mins[channel.kernel.channel_id] = channel.kernel.unconsumed_min()
        return LocalGCSummary(
            space_id=self.space_id,
            thread_visibilities=visibilities,
            channel_mins=channel_mins,
            epoch=epoch,
        )

    def apply_gc_horizon(self, horizon: VirtualTime) -> int:
        """Collect items below ``horizon`` in every local channel."""
        with self._gc_horizon_lock:
            if horizon is not INFINITY and horizon <= self._gc_horizon_applied:
                return 0
        with self._push_cache_lock:
            if horizon is INFINITY:
                self._push_cache.clear()
            else:
                bound = int(horizon)
                self._push_cache = {
                    key: value
                    for key, value in self._push_cache.items()
                    if key[1] >= bound
                }
        collected = 0
        rec = _obs.recorder
        t0 = rec.now() if rec is not None else 0
        for channel in self.local_channels():
            with channel.lock:
                dead = channel.kernel.collect_below(horizon)
                if dead:
                    collected += len(dead)
                    # Space freed: bounded-channel puts may proceed.  Gets
                    # are retried too so one parked on a just-collected
                    # timestamp fails fast with ItemGarbageCollectedError
                    # instead of blocking forever.
                    self._drain_locked(channel, puts=True, gets=True)
        if rec is not None:
            rec.complete(
                "gc", "gc.apply", t0, self.space_id,
                horizon=str(horizon), collected=collected,
            )
        if horizon is not INFINITY:
            with self._gc_horizon_lock:
                self._gc_horizon_applied = max(
                    self._gc_horizon_applied, int(horizon)
                )
        return collected


class RemoteThreadHandle:
    """Join handle for a thread spawned on another address space."""

    def __init__(self, client: AddressSpace, space: int, name: str):
        self._client = client
        self.space = space
        self.name = name

    def join(self, timeout: float | None = None) -> None:
        self._client.join_thread(self.space, self.name, timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RemoteThreadHandle {self.name!r} on space {self.space}>"


#: Sentinel: handler parked the request; the reply will be sent later.
_PARKED = object()

AddressSpace._HANDLERS = {
    CreateChannelReq: AddressSpace._h_create_channel,
    DestroyChannelReq: AddressSpace._h_destroy_channel,
    AttachReq: AddressSpace._h_attach,
    DetachReq: AddressSpace._h_detach,
    PutReq: AddressSpace._h_put,
    GetReq: AddressSpace._h_get,
    ConsumeReq: AddressSpace._h_consume,
    RegisterNameReq: AddressSpace._h_register_name,
    LookupNameReq: AddressSpace._h_lookup_name,
    SpawnReq: AddressSpace._h_spawn,
    JoinReq: AddressSpace._h_join,
    GcSummaryReq: AddressSpace._h_gc_summary,
    GcApplyReq: AddressSpace._h_gc_apply,
    EndpointStatsReq: AddressSpace._h_endpoint_stats,
    TelemetryHarvestReq: AddressSpace._h_telemetry_harvest,
    ClockProbeReq: AddressSpace._h_clock_probe,
}
