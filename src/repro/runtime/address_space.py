"""Stampede address spaces: channel homes, RPC dispatch, cluster-wide threads.

An :class:`AddressSpace` is one of the cluster's protection domains (the
paper runs one per SMP).  It owns:

* the **channels homed here** — each a :class:`LocalChannel` pairing a
  :class:`~repro.core.channel_state.ChannelKernel` with a condition variable
  (for local blockers) and a park list (for remote blockers);
* the **Stampede threads** running here, whose visibilities feed GC;
* a **dispatcher thread** that serves incoming CLF messages: channel RPCs
  from other spaces, GC protocol traffic, spawn/join requests, and name
  registry operations (on the registry space).

Location transparency (§4): a thread operating on a channel homed in its own
space takes a direct, lock-protected fast path ("CLF exploits shared memory
within an SMP"); operations on remote channels become synchronous RPCs over
CLF.  Both paths run the *same* kernel code, so semantics cannot diverge.

Blocking: a local blocked operation waits on the channel's condition
variable; a remote blocked operation is parked at the home space and retried
whenever the channel's state changes, with the reply sent as soon as the
operation completes (or a cancel arrives).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.core.channel_state import BlockReason, ChannelKernel, Status
from repro.core.flags import GetWildcard, UNKNOWN_REFCOUNT
from repro.core.gc_state import LocalGCSummary
from repro.core.payload import CopyPolicy
from repro.core.time import INFINITY, VirtualTime, vt_min
from repro.errors import (
    AddressSpaceError,
    ChannelEmptyError,
    ChannelFullError,
    NameInUseError,
    NoSuchChannelError,
    StampedeError,
)
from repro.runtime.messages import (
    AttachReq,
    CachePushMsg,
    ConsumeReq,
    CreateChannelReq,
    DestroyChannelReq,
    DetachReq,
    GcApplyReq,
    GcCollectMsg,
    GcSummaryReq,
    GetReq,
    LookupNameReq,
    PutReq,
    RegisterNameReq,
    RpcCancel,
    RpcReply,
    RpcRequest,
    ShutdownMsg,
    SpawnReq,
)
from repro.runtime.threads import StampedeThread, current_thread
from repro.transport.clf import ClfEndpoint
from repro.transport.serialization import decode_message, encode_message
from repro.util.ids import IdAllocator

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

__all__ = ["ChannelHandle", "LocalChannel", "AddressSpace"]


@dataclass(frozen=True)
class ChannelHandle:
    """Portable reference to a channel anywhere in the cluster."""

    channel_id: int
    home_space: int
    name: str | None = None
    capacity: int | None = None
    copy_policy: CopyPolicy = CopyPolicy.SERIALIZE
    #: eager data push toward consumer spaces (the §9 optimization).
    push: bool = False


@dataclass
class _Parked:
    """A remote blocking request waiting at the channel home."""

    call_id: int
    src_space: int
    body: Any  # PutReq | GetReq


class LocalChannel:
    """A channel homed in this address space."""

    def __init__(self, kernel: ChannelKernel, handle: ChannelHandle):
        self.kernel = kernel
        self.handle = handle
        self.cond = threading.Condition()
        self.parked: list[_Parked] = []
        #: conn_id -> attaching space, for the eager-push optimization.
        self.input_spaces: dict[int, int] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LocalChannel {self.handle.channel_id} items={len(self.kernel)}>"


@dataclass
class _Call:
    """Client-side state of an outstanding RPC."""

    event: threading.Event = field(default_factory=threading.Event)
    value: Any = None
    error: BaseException | None = None
    done: bool = False


@dataclass
class JoinReq:
    """Park until the named thread on the receiving space exits."""

    thread_name: str


class AddressSpace:
    """One Stampede address space: channels, threads, dispatcher, RPC client."""

    def __init__(self, cluster: "Cluster", space_id: int, endpoint: ClfEndpoint):
        self.cluster = cluster
        self.space_id = space_id
        self.endpoint = endpoint
        n = cluster.n_spaces
        self._channel_ids = IdAllocator(space_id, n)
        self._conn_ids = IdAllocator(space_id, n)
        self._call_ids = IdAllocator(space_id, n)
        self._channels: dict[int, LocalChannel] = {}
        self._channels_lock = threading.Lock()
        self._threads: dict[str, StampedeThread] = {}
        self._threads_lock = threading.Lock()
        self._thread_seq = IdAllocator(0, 1)
        self._calls: dict[int, _Call] = {}
        self._calls_lock = threading.Lock()
        self._parked_index: dict[int, LocalChannel] = {}  # call_id -> channel
        self._pending_joins: dict[str, list[tuple[int, int]]] = {}
        # registry space only:
        self._names: dict[str, ChannelHandle] = {}
        self._name_waiters: dict[str, list[tuple[int, int]]] = {}
        self._registry_lock = threading.Lock()
        self._gc_horizon_applied: VirtualTime = 0
        #: (channel_id, timestamp) -> (payload, size): items eagerly pushed
        #: here by push-enabled channel homes (§9).
        self._push_cache: dict[tuple[int, int], tuple[Any, int]] = {}
        self._push_cache_lock = threading.Lock()
        self._dispatcher: threading.Thread | None = None
        self._running = False
        #: connections attached by threads of this space: conn_id ->
        #: (handle, thread) — used to auto-detach on thread exit.
        self._conn_owner: dict[int, tuple[ChannelHandle, StampedeThread]] = {}
        self._conn_owner_lock = threading.Lock()

    # ==================================================================
    # lifecycle
    # ==================================================================
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name=f"stampede-dispatch-{self.space_id}",
            daemon=True,
        )
        self._dispatcher.start()

    def stop(self) -> None:
        """Local half of cluster shutdown: wake the dispatcher and join it."""
        if not self._running:
            return
        self._running = False
        self.endpoint.close()
        if self._dispatcher and self._dispatcher is not threading.current_thread():
            self._dispatcher.join(timeout=5.0)

    @property
    def is_registry(self) -> bool:
        return self.space_id == self.cluster.registry_space

    # ==================================================================
    # dispatcher
    # ==================================================================
    def _dispatch_loop(self) -> None:
        from repro.errors import TransportClosedError

        while self._running:
            try:
                src, data = self.endpoint.recv()
            except TransportClosedError:
                break
            try:
                msg = decode_message(data)
            except Exception:  # corrupt message: drop, keep serving
                continue
            if isinstance(msg, RpcReply):
                self._complete_call(msg)
            elif isinstance(msg, RpcRequest):
                self._serve_request(msg)
            elif isinstance(msg, RpcCancel):
                self._serve_cancel(msg)
            elif isinstance(msg, CachePushMsg):
                with self._push_cache_lock:
                    self._push_cache[(msg.channel_id, msg.timestamp)] = (
                        msg.payload, msg.size,
                    )
            elif isinstance(msg, GcCollectMsg):
                self.apply_gc_horizon(msg.horizon)
            elif isinstance(msg, ShutdownMsg):
                self._running = False
                break
        # Fail any calls still outstanding so client threads don't hang.
        with self._calls_lock:
            for call in self._calls.values():
                if not call.done:
                    call.error = AddressSpaceError(
                        f"address space {self.space_id} shut down with the "
                        f"call outstanding"
                    )
                    call.done = True
                    call.event.set()

    def _serve_request(self, req: RpcRequest) -> None:
        try:
            result = self._handle(req.body, req.src_space, req.call_id)
        except BaseException as exc:  # noqa: BLE001 - forwarded to caller
            self._reply_error(req.src_space, req.call_id, exc)
            return
        if result is _PARKED:
            return  # reply comes later, from a drain
        self._reply_value(req.src_space, req.call_id, result)

    def _serve_cancel(self, msg: RpcCancel) -> None:
        channel = self._parked_index.pop(msg.call_id, None)
        if channel is None:
            return  # already completed; the reply won the race
        with channel.cond:
            for i, parked in enumerate(channel.parked):
                if parked.call_id == msg.call_id:
                    del channel.parked[i]
                    self._reply_error(
                        parked.src_space,
                        parked.call_id,
                        TimeoutError("operation cancelled by caller timeout"),
                    )
                    return

    def _reply_value(self, dst: int, call_id: int, value: Any) -> None:
        self.endpoint.send(dst, encode_message(RpcReply(call_id, value=value)))

    def _reply_error(self, dst: int, call_id: int, error: BaseException) -> None:
        self.endpoint.send(dst, encode_message(RpcReply(call_id, error=error)))

    # ==================================================================
    # RPC client
    # ==================================================================
    def call(self, dst_space: int, body: Any, timeout: float | None = None) -> Any:
        """Synchronous RPC to another address space."""
        if dst_space == self.space_id:
            # Self-calls bypass the wire entirely (shared-memory fast path),
            # but still run the exact handler code.
            result = self._handle_blocking_locally(body, timeout)
            return result
        call_id = self._call_ids.next()
        call = _Call()
        with self._calls_lock:
            self._calls[call_id] = call
        self.endpoint.send(
            dst_space, encode_message(RpcRequest(call_id, self.space_id, body))
        )
        if not call.event.wait(timeout):
            # Ask the server to abandon the parked request, then give the
            # reply (cancelled or real) a grace period to land.
            self.endpoint.send(dst_space, encode_message(RpcCancel(call_id)))
            call.event.wait(5.0)
            if not call.done:
                with self._calls_lock:
                    self._calls.pop(call_id, None)
                raise TimeoutError(
                    f"RPC to space {dst_space} timed out after {timeout}s "
                    f"and the cancel was not acknowledged"
                )
        with self._calls_lock:
            self._calls.pop(call_id, None)
        if call.error is not None:
            raise call.error
        return call.value

    def _complete_call(self, reply: RpcReply) -> None:
        with self._calls_lock:
            call = self._calls.get(reply.call_id)
        if call is None or call.done:
            return  # late reply after cancel: drop
        call.value = reply.value
        call.error = reply.error
        call.done = True
        call.event.set()

    # ==================================================================
    # request handlers (run on the dispatcher thread, or inline for
    # same-space calls)
    # ==================================================================
    def _handle(self, body: Any, src_space: int, call_id: int | None) -> Any:
        handler = self._HANDLERS.get(type(body))
        if handler is None:
            raise AddressSpaceError(f"no handler for {type(body).__name__}")
        return handler(self, body, src_space, call_id)

    def _handle_blocking_locally(self, body: Any, timeout: float | None) -> Any:
        """Execute a request for a thread of this very space.

        Blocking puts/gets wait on the channel condition variable instead of
        being parked (there is no reply to defer).
        """
        if isinstance(body, PutReq):
            return self._local_put(body, timeout)
        if isinstance(body, GetReq):
            return self._local_get(body, timeout)
        if isinstance(body, (LookupNameReq,)) and body.wait:
            return self._local_lookup_wait(body, timeout)
        if isinstance(body, JoinReq):
            return self._local_join(body, timeout)
        result = self._handle(body, self.space_id, None)
        if result is _PARKED:  # pragma: no cover - defensive
            raise AddressSpaceError("local request parked unexpectedly")
        return result

    # -- channel management ------------------------------------------------
    def _h_create_channel(self, body: CreateChannelReq, src: int, cid) -> ChannelHandle:
        channel_id = self._channel_ids.next()
        handle = ChannelHandle(
            channel_id=channel_id,
            home_space=self.space_id,
            name=body.name,
            capacity=body.capacity,
            push=body.push,
        )
        kernel = ChannelKernel(channel_id, capacity=body.capacity)
        with self._channels_lock:
            self._channels[channel_id] = LocalChannel(kernel, handle)
        return handle

    def _h_destroy_channel(self, body: DestroyChannelReq, src: int, cid) -> None:
        channel = self._channel(body.channel_id)
        with channel.cond:
            for parked in channel.parked:
                self._parked_index.pop(parked.call_id, None)
                self._reply_error(
                    parked.src_space,
                    parked.call_id,
                    StampedeError("channel destroyed while operation blocked"),
                )
            channel.parked.clear()
            channel.kernel.destroy()
            channel.cond.notify_all()
        with self._channels_lock:
            self._channels.pop(body.channel_id, None)

    def _h_attach(self, body: AttachReq, src: int, cid) -> None:
        channel = self._channel(body.channel_id)
        with channel.cond:
            if body.is_input:
                channel.kernel.attach_input(body.conn_id, body.visibility)
                channel.input_spaces[body.conn_id] = src
            else:
                channel.kernel.attach_output(body.conn_id)
            self._drain_locked(channel)
            channel.cond.notify_all()

    def _h_detach(self, body: DetachReq, src: int, cid) -> None:
        channel = self._channel(body.channel_id)
        with channel.cond:
            channel.kernel.detach(body.conn_id)
            channel.input_spaces.pop(body.conn_id, None)
            self._drain_locked(channel)
            channel.cond.notify_all()

    # -- puts/gets/consumes --------------------------------------------------
    def _h_put(self, body: PutReq, src: int, call_id) -> Any:
        channel = self._channel(body.channel_id)
        with channel.cond:
            result = channel.kernel.put(
                body.conn_id, body.timestamp, body.payload, body.size, body.refcount
            )
            if result.status is Status.OK:
                self._maybe_push(channel, body.timestamp)
                self._drain_locked(channel)
                channel.cond.notify_all()
                return None
            if not body.block:
                raise ChannelFullError(
                    f"channel {body.channel_id} is full "
                    f"(capacity {channel.kernel.capacity})"
                )
            parked = _Parked(call_id, src, body)
            channel.parked.append(parked)
            self._parked_index[call_id] = channel
            return _PARKED

    def _h_get(self, body: GetReq, src: int, call_id) -> Any:
        channel = self._channel(body.channel_id)
        with channel.cond:
            result = channel.kernel.get(body.conn_id, body.request)
            if result.status is Status.OK:
                channel.cond.notify_all()
                return self._get_reply(channel, body, result, src)
            if not body.block:
                raise ChannelEmptyError(
                    f"no item matching {body.request!r} in channel "
                    f"{body.channel_id}; neighbours {result.timestamp_range}"
                )
            parked = _Parked(call_id, src, body)
            channel.parked.append(parked)
            self._parked_index[call_id] = channel
            return _PARKED

    def _h_consume(self, body: ConsumeReq, src: int, cid) -> None:
        channel = self._channel(body.channel_id)
        with channel.cond:
            if body.until:
                channel.kernel.consume_until(body.conn_id, body.timestamp)
            else:
                channel.kernel.consume(body.conn_id, body.timestamp)
            self._drain_locked(channel)
            channel.cond.notify_all()

    def _drain_locked(self, channel: LocalChannel) -> None:
        """Retry parked remote requests after a state change (lock held)."""
        if not channel.parked:
            return
        still_parked: list[_Parked] = []
        for parked in channel.parked:
            body = parked.body
            try:
                if isinstance(body, PutReq):
                    result = channel.kernel.put(
                        body.conn_id,
                        body.timestamp,
                        body.payload,
                        body.size,
                        body.refcount,
                    )
                    if result.status is Status.OK:
                        self._maybe_push(channel, body.timestamp)
                        self._parked_index.pop(parked.call_id, None)
                        self._reply_value(parked.src_space, parked.call_id, None)
                    else:
                        still_parked.append(parked)
                elif isinstance(body, GetReq):
                    result = channel.kernel.get(body.conn_id, body.request)
                    if result.status is Status.OK:
                        self._parked_index.pop(parked.call_id, None)
                        self._reply_value(
                            parked.src_space,
                            parked.call_id,
                            self._get_reply(channel, body, result,
                                            parked.src_space),
                        )
                    else:
                        still_parked.append(parked)
                else:  # pragma: no cover - only puts/gets park
                    still_parked.append(parked)
            except BaseException as exc:  # noqa: BLE001 - forwarded
                self._parked_index.pop(parked.call_id, None)
                self._reply_error(parked.src_space, parked.call_id, exc)
        channel.parked[:] = still_parked

    def _maybe_push(self, channel: LocalChannel, timestamp: int) -> None:
        """Eagerly forward a fresh item to consumer spaces (§9; lock held).

        CLF's per-link FIFO guarantees the push lands at each space before
        any later get reply that omits the payload.
        """
        if not channel.handle.push:
            return
        record = channel.kernel.items.get(timestamp)
        if record is None:
            return  # reclaimed already (e.g. refcount 0)
        targets = {
            space for space in channel.input_spaces.values()
            if space != self.space_id
        }
        if not targets:
            return
        if record.pushed_to is None:
            record.pushed_to = set()
        msg = encode_message(CachePushMsg(
            channel.kernel.channel_id, timestamp, record.payload, record.size,
        ))
        for space in targets:
            self.endpoint.send(space, msg)
            record.pushed_to.add(space)

    def _get_reply(self, channel: LocalChannel, body: GetReq, result,
                   requester: int) -> tuple:
        """Build a get reply: ``(payload, ts, size, from_cache)``.

        The payload is omitted when the requester declared cache capability
        and this item was pushed to its space.
        """
        record = channel.kernel.items.get(result.timestamp)
        if (
            body.cache_ok
            and record is not None
            and record.pushed_to is not None
            and requester in record.pushed_to
        ):
            return (None, result.timestamp, result.size, True)
        return (result.payload, result.timestamp, result.size, False)

    # -- local blocking fast paths ------------------------------------------
    def _local_put(self, body: PutReq, timeout: float | None) -> None:
        channel = self._channel(body.channel_id)
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        with channel.cond:
            while True:
                result = channel.kernel.put(
                    body.conn_id, body.timestamp, body.payload, body.size, body.refcount
                )
                if result.status is Status.OK:
                    self._maybe_push(channel, body.timestamp)
                    self._drain_locked(channel)
                    channel.cond.notify_all()
                    return
                if not body.block:
                    raise ChannelFullError(
                        f"channel {body.channel_id} is full "
                        f"(capacity {channel.kernel.capacity})"
                    )
                self._cond_wait(channel, deadline, "put")

    def _local_get(self, body: GetReq, timeout: float | None):
        channel = self._channel(body.channel_id)
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        with channel.cond:
            while True:
                result = channel.kernel.get(body.conn_id, body.request)
                if result.status is Status.OK:
                    channel.cond.notify_all()
                    return (result.payload, result.timestamp, result.size, False)
                if not body.block:
                    raise ChannelEmptyError(
                        f"no item matching {body.request!r} in channel "
                        f"{body.channel_id}; neighbours {result.timestamp_range}"
                    )
                self._cond_wait(channel, deadline, "get")

    @staticmethod
    def _cond_wait(channel: LocalChannel, deadline: float | None, op: str) -> None:
        if deadline is None:
            channel.cond.wait()
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not channel.cond.wait(remaining):
            raise TimeoutError(f"blocking {op} timed out")

    # -- name registry (registry space only) -----------------------------
    def _h_register_name(self, body: RegisterNameReq, src: int, cid) -> None:
        self._require_registry()
        handle: ChannelHandle = body.handle
        with self._registry_lock:
            if body.name in self._names:
                raise NameInUseError(
                    f"channel name {body.name!r} already registered"
                )
            self._names[body.name] = handle
            waiters = self._name_waiters.pop(body.name, [])
        for waiter_call, waiter_src in waiters:
            self._reply_value(waiter_src, waiter_call, handle)

    def _h_lookup_name(self, body: LookupNameReq, src: int, call_id) -> Any:
        self._require_registry()
        with self._registry_lock:
            handle = self._names.get(body.name)
            if handle is not None:
                return handle
            if not body.wait:
                raise NoSuchChannelError(f"no channel named {body.name!r}")
            self._name_waiters.setdefault(body.name, []).append((call_id, src))
        return _PARKED

    def _local_lookup_wait(self, body: LookupNameReq, timeout: float | None):
        """Blocking lookup when the registry is this very space."""
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        while True:
            handle = self._names.get(body.name)
            if handle is not None:
                return handle
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"channel name {body.name!r} never registered")
            time.sleep(0.001)

    def _require_registry(self) -> None:
        if not self.is_registry:
            raise AddressSpaceError(
                f"space {self.space_id} is not the registry space "
                f"({self.cluster.registry_space})"
            )

    # -- spawn / join ---------------------------------------------------------
    def _h_spawn(self, body: SpawnReq, src: int, cid) -> str:
        thread = self._spawn_local(
            body.fn,
            body.args,
            body.kwargs,
            name=body.name,
            virtual_time=body.virtual_time if body.virtual_time is not None else 0,
            parent=None,  # cross-space parent rule enforced at the caller
        )
        return thread.name

    def _h_join(self, body: JoinReq, src: int, call_id) -> Any:
        with self._threads_lock:
            thread = self._threads.get(body.thread_name)
            if thread is None:
                return None  # already exited (or never existed)
            self._pending_joins.setdefault(body.thread_name, []).append(
                (call_id, src)
            )
        return _PARKED

    def _local_join(self, body: JoinReq, timeout: float | None) -> None:
        with self._threads_lock:
            thread = self._threads.get(body.thread_name)
        if thread is not None:
            thread.join(timeout)

    def _h_gc_summary(self, body: GcSummaryReq, src: int, cid) -> LocalGCSummary:
        return self.gc_summary(body.epoch)

    def _h_gc_apply(self, body, src: int, cid) -> int:
        return self.apply_gc_horizon(body.horizon)

    _HANDLERS: dict[type, Callable] = {}

    # ==================================================================
    # public API used by the STM facade and the cluster
    # ==================================================================
    def spawn(
        self,
        fn: Callable,
        args: tuple = (),
        kwargs: dict | None = None,
        *,
        name: str | None = None,
        virtual_time: VirtualTime | None = None,
        on_space: int | None = None,
    ) -> "StampedeThread | RemoteThreadHandle":
        """Create a Stampede thread, here or on another space.

        The child's initial virtual time defaults to the parent's current
        visibility (the smallest legal value per §4.2); passing INFINITY is
        the common choice for interior pipeline threads.
        """
        parent = current_thread()
        if virtual_time is None:
            # Default to the smallest legal initial VT: the parent's current
            # visibility (§4.2), or 0 for a root thread.  INFINITY must be
            # opted into explicitly — it is irreversible (a thread can never
            # lower its VT below its visibility), which makes it wrong as a
            # default for threads that produce timestamps of their own.
            virtual_time = parent.visibility() if parent is not None else 0
        if on_space is None or on_space == self.space_id:
            return self._spawn_local(
                fn, args, kwargs or {}, name=name, virtual_time=virtual_time,
                parent=parent,
            )
        remote_name = self.call(
            on_space,
            SpawnReq(fn=fn, args=args, kwargs=kwargs or {}, name=name,
                     virtual_time=virtual_time),
        )
        return RemoteThreadHandle(self, on_space, remote_name)

    def _spawn_local(
        self,
        fn: Callable,
        args: tuple,
        kwargs: dict,
        *,
        name: str | None,
        virtual_time: VirtualTime,
        parent: StampedeThread | None,
    ) -> StampedeThread:
        if name is None:
            name = f"spd-{self.space_id}-{self._thread_seq.next()}"
        with self._threads_lock:
            if name in self._threads:
                raise StampedeError(
                    f"thread name {name!r} already in use on space {self.space_id}"
                )
            thread = StampedeThread(self, name, virtual_time, parent=parent)
            self._threads[name] = thread
        os_thread = threading.Thread(
            target=thread._run, args=(fn, args, kwargs), name=name, daemon=True
        )
        thread.os_thread = os_thread
        os_thread.start()
        return thread

    def adopt_current_thread(
        self, virtual_time: VirtualTime = 0, name: str | None = None
    ) -> StampedeThread:
        """Bind STM thread state to the calling OS thread (e.g. __main__).

        The default virtual time of 0 lets the adopted thread put at any
        timestamp; remember to advance it (or jump to INFINITY once the
        thread only inherits timestamps) so GC can progress (§4.2).
        """
        existing = current_thread()
        if existing is not None and existing.alive:
            if existing.space is self:
                return existing
            if existing.space.cluster is self.cluster:
                raise StampedeError(
                    f"this OS thread is already adopted by space "
                    f"{existing.space.space_id}; call exit() on that "
                    f"StampedeThread before adopting into space {self.space_id}"
                )
            # The binding points into a different (likely shut down) cluster:
            # a stale leftover.  Unbind it and adopt fresh.
            existing.exit()
        if name is None:
            name = f"adopted-{self.space_id}-{self._thread_seq.next()}"
        with self._threads_lock:
            thread = StampedeThread(self, name, virtual_time)
            self._threads[name] = thread
        thread.os_thread = threading.current_thread()
        thread._bind()
        return thread

    def _thread_exited(self, thread: StampedeThread) -> None:
        # Auto-detach any connections the thread left attached so they stop
        # pinning the GC minimum.
        leaked: list[int] = []
        with self._conn_owner_lock:
            for conn_id, (handle, owner) in list(self._conn_owner.items()):
                if owner is thread:
                    leaked.append(conn_id)
        for conn_id in leaked:
            handle, _ = self._conn_owner.get(conn_id, (None, None))
            if handle is not None:
                try:
                    self.detach(handle, conn_id)
                except StampedeError:
                    pass
        with self._threads_lock:
            self._threads.pop(thread.name, None)
            joins = self._pending_joins.pop(thread.name, [])
        for call_id, src in joins:
            self._reply_value(src, call_id, None)

    def join_thread(
        self, space: int, name: str, timeout: float | None = None
    ) -> None:
        self.call(space, JoinReq(name), timeout=timeout)

    def threads(self) -> list[StampedeThread]:
        with self._threads_lock:
            return list(self._threads.values())

    # -- channel operations (facade entry points) --------------------------
    def create_channel(
        self,
        name: str | None = None,
        capacity: int | None = None,
        home: int | None = None,
        copy_policy: CopyPolicy = CopyPolicy.SERIALIZE,
        push: bool = False,
    ) -> ChannelHandle:
        home = self.space_id if home is None else home
        if copy_policy is not CopyPolicy.SERIALIZE and home != self.space_id:
            raise StampedeError(
                f"copy policy {copy_policy.value} is local-only; channel must "
                f"be homed in the creating space"
            )
        if push and copy_policy is not CopyPolicy.SERIALIZE:
            raise StampedeError("eager push requires the SERIALIZE copy policy")
        handle: ChannelHandle = self.call(
            home, CreateChannelReq(name, capacity, push)
        )
        handle = ChannelHandle(
            channel_id=handle.channel_id,
            home_space=handle.home_space,
            name=name,
            capacity=capacity,
            copy_policy=copy_policy,
            push=push,
        )
        if home == self.space_id:
            # record the policy on the local channel object
            self._channel(handle.channel_id).handle = handle
        if name is not None:
            self.call(self.cluster.registry_space, RegisterNameReq(name, handle))
            self.cluster._note_named_handle(handle)
        return handle

    def lookup_channel(
        self, name: str, wait: bool = False, timeout: float | None = None
    ) -> ChannelHandle:
        handle = self.cluster._named_handle(name)
        if handle is not None:
            return handle
        handle = self.call(
            self.cluster.registry_space, LookupNameReq(name, wait), timeout=timeout
        )
        self.cluster._note_named_handle(handle)
        return handle

    def destroy_channel(self, handle: ChannelHandle) -> None:
        self.call(handle.home_space, DestroyChannelReq(handle.channel_id))

    def attach(
        self,
        handle: ChannelHandle,
        *,
        is_input: bool,
        thread: StampedeThread,
    ) -> int:
        if (
            handle.copy_policy is not CopyPolicy.SERIALIZE
            and handle.home_space != self.space_id
        ):
            raise StampedeError(
                f"channel {handle.channel_id} uses local-only copy policy "
                f"{handle.copy_policy.value}; cannot attach from space "
                f"{self.space_id}"
            )
        conn_id = self._conn_ids.next()
        visibility = thread.visibility() if is_input else None
        self.call(
            handle.home_space,
            AttachReq(handle.channel_id, conn_id, is_input, visibility),
        )
        with self._conn_owner_lock:
            self._conn_owner[conn_id] = (handle, thread)
        return conn_id

    def detach(self, handle: ChannelHandle, conn_id: int) -> None:
        with self._conn_owner_lock:
            self._conn_owner.pop(conn_id, None)
        self.call(handle.home_space, DetachReq(handle.channel_id, conn_id))

    def put(
        self,
        handle: ChannelHandle,
        conn_id: int,
        timestamp: int,
        payload: Any,
        size: int,
        refcount: int = UNKNOWN_REFCOUNT,
        block: bool = True,
        timeout: float | None = None,
    ) -> None:
        self.call(
            handle.home_space,
            PutReq(handle.channel_id, conn_id, timestamp, payload, size,
                   refcount, block),
            timeout=timeout,
        )

    def get(
        self,
        handle: ChannelHandle,
        conn_id: int,
        request: int | GetWildcard,
        block: bool = True,
        timeout: float | None = None,
    ) -> tuple[Any, int, int]:
        cache_ok = handle.push and handle.home_space != self.space_id
        payload, ts, size, cached = self.call(
            handle.home_space,
            GetReq(handle.channel_id, conn_id, request, block, cache_ok),
            timeout=timeout,
        )
        if cached:
            with self._push_cache_lock:
                entry = self._push_cache.get((handle.channel_id, ts))
            if entry is not None:
                return (entry[0], ts, size)
            # The push should have arrived first (per-link FIFO); if the
            # cache was purged in between, re-fetch the payload explicitly.
            payload, ts, size, _ = self.call(
                handle.home_space,
                GetReq(handle.channel_id, conn_id, ts, block, False),
                timeout=timeout,
            )
        return (payload, ts, size)

    def consume(
        self, handle: ChannelHandle, conn_id: int, timestamp: int, until: bool = False
    ) -> None:
        self.call(
            handle.home_space,
            ConsumeReq(handle.channel_id, conn_id, timestamp, until),
        )

    def _channel(self, channel_id: int) -> LocalChannel:
        with self._channels_lock:
            channel = self._channels.get(channel_id)
        if channel is None:
            raise NoSuchChannelError(
                f"channel {channel_id} is not homed in space {self.space_id}"
            )
        return channel

    def local_channels(self) -> list[LocalChannel]:
        with self._channels_lock:
            return list(self._channels.values())

    # -- garbage collection -------------------------------------------------
    def gc_summary(self, epoch: int = 0) -> LocalGCSummary:
        """This space's contribution to the global GC minimum."""
        visibilities = [t.visibility() for t in self.threads()]
        channel_mins: dict[int, VirtualTime] = {}
        for channel in self.local_channels():
            with channel.cond:
                channel_mins[channel.kernel.channel_id] = channel.kernel.unconsumed_min()
        return LocalGCSummary(
            space_id=self.space_id,
            thread_visibilities=visibilities,
            channel_mins=channel_mins,
            epoch=epoch,
        )

    def apply_gc_horizon(self, horizon: VirtualTime) -> int:
        """Collect items below ``horizon`` in every local channel."""
        if horizon is not INFINITY and horizon <= self._gc_horizon_applied:
            return 0
        with self._push_cache_lock:
            if horizon is INFINITY:
                self._push_cache.clear()
            else:
                bound = int(horizon)
                self._push_cache = {
                    key: value
                    for key, value in self._push_cache.items()
                    if key[1] >= bound
                }
        collected = 0
        for channel in self.local_channels():
            with channel.cond:
                dead = channel.kernel.collect_below(horizon)
                if dead:
                    collected += len(dead)
                    # space freed: bounded-channel puts may proceed
                    self._drain_locked(channel)
                    channel.cond.notify_all()
        if horizon is not INFINITY:
            self._gc_horizon_applied = max(self._gc_horizon_applied, int(horizon))
        return collected


class RemoteThreadHandle:
    """Join handle for a thread spawned on another address space."""

    def __init__(self, client: AddressSpace, space: int, name: str):
        self._client = client
        self.space = space
        self.name = name

    def join(self, timeout: float | None = None) -> None:
        self._client.join_thread(self.space, self.name, timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RemoteThreadHandle {self.name!r} on space {self.space}>"


#: Sentinel: handler parked the request; the reply will be sent later.
_PARKED = object()

AddressSpace._HANDLERS = {
    CreateChannelReq: AddressSpace._h_create_channel,
    DestroyChannelReq: AddressSpace._h_destroy_channel,
    AttachReq: AddressSpace._h_attach,
    DetachReq: AddressSpace._h_detach,
    PutReq: AddressSpace._h_put,
    GetReq: AddressSpace._h_get,
    ConsumeReq: AddressSpace._h_consume,
    RegisterNameReq: AddressSpace._h_register_name,
    LookupNameReq: AddressSpace._h_lookup_name,
    SpawnReq: AddressSpace._h_spawn,
    JoinReq: AddressSpace._h_join,
    GcSummaryReq: AddressSpace._h_gc_summary,
    GcApplyReq: AddressSpace._h_gc_apply,
}
