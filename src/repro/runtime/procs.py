"""The multi-process cluster runtime: one OS process per address space.

The thread runtime (:mod:`repro.runtime.cluster`) hosts every address space
in one Python process, so CPU-bound Stampede threads serialize on the GIL.
This module is the third runtime driver: :class:`ProcCluster` spawns each
address space as a **separate OS process** — real protection domains, as in
the paper — wired together by :class:`~repro.transport.sockets
.SocketEndpoint` over real media: shared-memory rings within a node, TCP
between nodes.  The same :class:`~repro.runtime.address_space.AddressSpace`
code runs in every process; only the transport underneath differs, so STM
semantics cannot diverge between runtimes.

Topology of one ``ProcCluster(n_spaces=k)``:

* the **parent** process hosts space 0, which is also the registry space
  and the GC coordinator (the daemon's scatter/gather RPCs reach children
  over the wire like any other traffic);
* **children** host spaces 1..k-1.  Each child is started with the
  ``spawn`` method — no forked locks, no inherited threads — and runs a
  plain dispatcher loop until a ``ShutdownMsg`` arrives or its transport
  fails.

Bootstrap: the parent creates the shared-memory rings and a
:class:`~repro.runtime.nameservice.NameService`, spawns the children, and
every process (parent included) registers its CLF listener port and blocks
for the directory; then everyone meshes up.  The rendezvous is a barrier,
so no process serves traffic before all can.

Supervision: children heartbeat the parent over their control connection.
The parent's supervisor thread watches process liveness and heartbeat ages;
a dead or wedged child **fails the parent endpoint**, which unwinds every
outstanding RPC with :class:`~repro.errors.TransportClosedError` instead of
hanging — and the abrupt TCP reset of a killed child usually beats the
heartbeat timeout.  ``shutdown()`` broadcasts ``ShutdownMsg``, joins the
children, escalates to ``terminate``/``kill`` for stragglers, and unlinks
every shared-memory segment: no orphan processes, no leaked segments.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass

from repro.analysis import racecheck, sanitizer
from repro.errors import StampedeError, TransportClosedError, TransportError
from repro.obs import events as _obs_events
from repro.obs.collect import (
    ClusterTelemetry,
    estimate_clock_offset,
    snapshot_local,
)
from repro.runtime.address_space import AddressSpace, ChannelHandle
from repro.runtime.gc_daemon import GcDaemon
from repro.runtime.messages import (
    ClockProbeReq,
    EndpointStatsReq,
    ShutdownMsg,
    TelemetryHarvestReq,
)
from repro.runtime.nameservice import NameService, register
from repro.runtime.sync import factories_installed
from repro.transport.clf import ClusterTopology
from repro.transport.serialization import encode_message_sg, frame_stats
from repro.transport.shm_ring import DEFAULT_RING_BYTES, ShmRing
from repro.transport.sockets import SocketEndpoint, ring_name

__all__ = ["ProcCluster"]


@dataclass(frozen=True)
class _ChildSpec:
    """Everything a child process needs to join the cluster (picklable)."""

    space: int
    n_spaces: int
    spaces_per_node: int
    registry_space: int
    session: str
    ns_port: int
    heartbeat_interval: float
    #: ring capacity to arm the child's tracer with; None = tracing off.
    obs_capacity: int | None = None
    #: "" (off), "1" (sanitizer), or "race" (sanitizer + race detector).
    san_mode: str = ""


class _SpaceHost:
    """The child-side stand-in for the cluster object.

    :class:`AddressSpace` touches its cluster only for ``n_spaces``,
    ``registry_space`` and the named-handle cache; a child process needs
    nothing more — cluster-wide state (registry, GC coordination) lives at
    space 0 and is reached over RPC like from any other space.
    """

    def __init__(self, n_spaces: int, registry_space: int):
        self.n_spaces = n_spaces
        self.registry_space = registry_space
        self._named_handles: dict[str, ChannelHandle] = {}
        self._named_lock = threading.Lock()

    def _note_named_handle(self, handle: ChannelHandle) -> None:
        if handle.name is None:
            return
        with self._named_lock:
            self._named_handles[handle.name] = handle

    def _named_handle(self, name: str) -> ChannelHandle | None:
        with self._named_lock:
            return self._named_handles.get(name)


def _space_main(spec: _ChildSpec) -> None:
    """Entry point of a child process: host one address space until told to stop."""
    # Arm instrumentation from the parent's *config*, not the environ: under
    # the spawn start method a child re-imports everything, so programmatic
    # arming in the parent — events.enable(), the trace() context manager,
    # sanitizer.enable() from a test — has no environment variable for the
    # child to inherit and would be silently lost.
    # The spec is authoritative in both directions: a child of a *disarmed*
    # cluster must run dark even if an inherited STMOBS armed it at import.
    if spec.obs_capacity is not None:
        _obs_events.enable(capacity=spec.obs_capacity)
    else:
        _obs_events.disable()
    if spec.san_mode:
        sanitizer.enable()
        if spec.san_mode == "race":
            racecheck.enable()
    topology = ClusterTopology(spec.n_spaces, spec.spaces_per_node)
    endpoint = SocketEndpoint(
        spec.space,
        topology,
        session=spec.session,
        heartbeat_to=spec.registry_space,
        heartbeat_interval=spec.heartbeat_interval,
    )
    space: AddressSpace | None = None
    try:
        directory = register(spec.ns_port, spec.space, endpoint.port)
        endpoint.connect_mesh(directory)
        host = _SpaceHost(spec.n_spaces, spec.registry_space)
        space = AddressSpace(host, spec.space, endpoint)
        space.start()
        dispatcher = space._dispatcher
        # The dispatcher exits on ShutdownMsg from the parent, or when the
        # transport fails (parent gone -> reader thread fails the endpoint).
        # Either way this process then leaves; the parent joins it.
        while dispatcher.is_alive():
            dispatcher.join(timeout=0.5)
    finally:
        if space is not None:
            space.stop()
        endpoint.close()


class ProcCluster:
    """A running Stampede cluster of address-space *processes*.

    Drop-in for the thread runtime's :class:`~repro.runtime.cluster.Cluster`
    for programs that drive the cluster from space 0::

        with ProcCluster(n_spaces=4) as cluster:
            stm = STM(cluster.space(0))
            h = stm.space.create_channel("frames", home=2)   # homed remotely
            cluster.spawn(worker_fn, (h,), on_space=2)       # module-level fn
            ...

    Differences from the thread runtime, all consequences of real process
    isolation: only space 0 is addressable in-process (``space(i>0)``
    raises — operate on remote spaces through handles and
    ``spawn(on_space=...)``), and every function or payload that crosses a
    space boundary must pickle cleanly under the ``spawn`` start method.

    Parameters mirror :class:`Cluster` where they can; ``spaces_per_node``
    defaults to *all on one node* (pure shared-memory data plane), and
    ``heartbeat_interval`` / ``heartbeat_timeout`` bound how fast a wedged
    child is detected (a crashed one is detected by TCP reset, typically
    much sooner).
    """

    def __init__(
        self,
        n_spaces: int = 1,
        spaces_per_node: int | None = None,
        gc_period: float | None = 0.05,
        ring_bytes: int = DEFAULT_RING_BYTES,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float = 2.0,
        mesh_timeout: float = 30.0,
    ):
        if n_spaces < 1:
            raise ValueError(f"n_spaces must be >= 1, got {n_spaces}")
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                f"heartbeat_timeout ({heartbeat_timeout}) must exceed "
                f"heartbeat_interval ({heartbeat_interval})"
            )
        if factories_installed():
            raise StampedeError(
                "cannot start ProcCluster while model-checker sync factories "
                "are installed: cooperative locks do not cross processes"
            )
        self.n_spaces = n_spaces
        self.registry_space = 0
        self.heartbeat_timeout = heartbeat_timeout
        self.session = f"{os.getpid():x}{os.urandom(3).hex()}"
        self.topology = ClusterTopology(
            n_spaces,
            n_spaces if spaces_per_node is None else spaces_per_node,
        )
        self.failure: BaseException | None = None
        #: filled by the shutdown harvest when tracing was armed (also
        #: available any time via :meth:`harvest_telemetry`).
        self.telemetry: ClusterTelemetry | None = None
        self._failed = threading.Event()
        self._failed_lock = threading.Lock()
        self._shut_down = False
        self._named_handles: dict[str, ChannelHandle] = {}
        self._named_lock = threading.Lock()
        # Rings first: attach (in connect_mesh, everywhere) requires the
        # segment to exist, and creating them before any process runs is the
        # simplest ordering that guarantees it.
        self._rings: list[ShmRing] = []
        self._procs: dict[int, multiprocessing.Process] = {}
        self._ns: NameService | None = None
        self.endpoint: SocketEndpoint | None = None
        try:
            for src in range(n_spaces):
                for dst in range(n_spaces):
                    if src != dst and self.topology.medium(src, dst).intra_node:
                        self._rings.append(
                            ShmRing.create(
                                ring_name(self.session, src, dst), ring_bytes
                            )
                        )
            self._ns = NameService(n_spaces)
            ctx = multiprocessing.get_context("spawn")
            rec = _obs_events.recorder
            obs_capacity = rec.capacity if rec is not None else None
            san_mode = ""
            if sanitizer.enabled():
                san_mode = "race" if racecheck.enabled() else "1"
            for space in range(1, n_spaces):
                spec = _ChildSpec(
                    space=space,
                    n_spaces=n_spaces,
                    spaces_per_node=self.topology.spaces_per_node,
                    registry_space=self.registry_space,
                    session=self.session,
                    ns_port=self._ns.port,
                    heartbeat_interval=heartbeat_interval,
                    obs_capacity=obs_capacity,
                    san_mode=san_mode,
                )
                proc = ctx.Process(
                    target=_space_main,
                    args=(spec,),
                    name=f"stm-space-{space}",
                    daemon=True,  # backstop: die with the parent
                )
                proc.start()
                self._procs[space] = proc
            self.endpoint = SocketEndpoint(
                self.registry_space, self.topology, session=self.session
            )
            self.endpoint.on_peer_lost = self._peer_lost
            directory = register(
                self._ns.port, self.registry_space, self.endpoint.port,
                timeout=mesh_timeout,
            )
            self.endpoint.connect_mesh(directory, timeout=mesh_timeout)
        except BaseException:
            self._emergency_teardown()
            raise
        self._space = AddressSpace(self, self.registry_space, self.endpoint)
        self._space.start()
        self.gc_daemon: GcDaemon | None = None
        if gc_period is not None:
            self.gc_daemon = GcDaemon(self, period=gc_period)
            self.gc_daemon.start()
        self._supervisor_started = time.monotonic()
        self._supervisor = threading.Thread(
            target=self._supervise, name="stm-supervisor", daemon=True
        )
        self._supervisor.start()

    # ==================================================================
    # cluster-like surface (AddressSpace + GcDaemon contract)
    # ==================================================================
    def space(self, space_id: int) -> AddressSpace:
        if space_id != self.registry_space:
            raise StampedeError(
                f"space {space_id} runs in another process; only space "
                f"{self.registry_space} is addressable here — use channel "
                f"handles and spawn(on_space=...) for remote work"
            )
        return self._space

    def _note_named_handle(self, handle: ChannelHandle) -> None:
        if handle.name is None:
            return
        with self._named_lock:
            self._named_handles[handle.name] = handle

    def _named_handle(self, name: str) -> ChannelHandle | None:
        with self._named_lock:
            return self._named_handles.get(name)

    # ==================================================================
    # conveniences
    # ==================================================================
    def spawn(self, fn, args=(), kwargs=None, *, on_space: int,
              name: str | None = None, virtual_time=None):
        """Spawn a Stampede thread on any space (``fn`` must pickle)."""
        return self._space.spawn(
            fn, args, kwargs, name=name, virtual_time=virtual_time,
            on_space=on_space,
        )

    def gc_once(self):
        """Run one synchronous GC round across all processes."""
        daemon = self.gc_daemon
        if daemon is None:
            daemon = self.gc_daemon = GcDaemon(self, period=1.0)
        return daemon.run_once()

    def endpoint_stats(self, space_id: int, reset_frames: bool = False) -> dict:
        """Transport counters of any space (children answered over RPC)."""
        if space_id == self.registry_space:
            snap = {
                "clf": self.endpoint.stats.snapshot(),
                "frames": frame_stats.snapshot(),
            }
            if reset_frames:
                frame_stats.reset()
            return snap
        return self._space.call(
            space_id, EndpointStatsReq(reset_frames=reset_frames), timeout=10.0
        )

    def harvest_telemetry(self, disarm: bool = False) -> ClusterTelemetry:
        """Drain every process's recorder rings + metrics into one harvest.

        Each child answers a ``TelemetryHarvestReq`` control RPC; the
        request/response midpoint against the child's reported clock gives
        its offset onto this process's monotonic clock, so
        ``ClusterTelemetry.chrome_trace()`` lands all spans on one
        timeline.  Usable mid-run (a live snapshot) or at shutdown
        (``disarm=True`` also disarms the children's tracers).
        """
        processes = [snapshot_local(space=self.registry_space)]
        for space in sorted(self._procs):
            offset = self._probe_clock_offset(space)
            t_req = time.perf_counter_ns()
            telemetry = self._space.call(
                space, TelemetryHarvestReq(disarm=disarm), timeout=10.0
            )
            t_resp = time.perf_counter_ns()
            if offset is None:
                # Probe-less fallback: the harvest RPC itself (pickling
                # every ring) bounds the error, so this is coarser.
                offset = estimate_clock_offset(
                    t_req, t_resp, telemetry.clock_ns
                )
            telemetry.clock_offset_ns = offset
            processes.append(telemetry)
        return ClusterTelemetry(processes)

    def _probe_clock_offset(
        self, space: int, n_probes: int = 3
    ) -> int | None:
        """Clock offset of ``space`` from the lowest-RTT of a few probes.

        The midpoint estimate's error is bounded by half the round trip,
        so among several cheap probes the fastest one wins (NTP's trick);
        a loaded dispatcher queue then costs accuracy on the slow probes
        without poisoning the estimate.  None if every probe failed.
        """
        best_rtt: int | None = None
        best_offset: int | None = None
        for _ in range(n_probes):
            t_req = time.perf_counter_ns()
            try:
                remote = self._space.call(space, ClockProbeReq(), timeout=10.0)
            except (StampedeError, TransportError, TransportClosedError):
                break
            t_resp = time.perf_counter_ns()
            rtt = t_resp - t_req
            if best_rtt is None or rtt < best_rtt:
                best_rtt = rtt
                best_offset = estimate_clock_offset(t_req, t_resp, remote)
        return best_offset

    def check_failure(self) -> None:
        """Raise the recorded cluster failure, if any."""
        if self.failure is not None:
            raise self.failure

    def wait_failed(self, timeout: float | None = None) -> bool:
        """Block until a space failure is detected (tests); True if one was."""
        return self._failed.wait(timeout)

    # ==================================================================
    # supervision
    # ==================================================================
    def _peer_lost(self, space: int, exc: BaseException) -> None:
        self._on_space_failure(space, exc)

    def _on_space_failure(self, space: int, exc: BaseException) -> None:
        if self._shut_down:
            return
        with self._failed_lock:
            if self.failure is not None:
                return  # first failure wins; the rest are fallout
            if not isinstance(exc, TransportClosedError):
                exc = TransportClosedError(
                    f"address space {space} failed: {exc}"
                )
            self.failure = exc
        self._failed.set()
        # Failing the endpoint unwinds every outstanding RPC with a
        # TransportClosedError and stops the dispatcher: no caller hangs on
        # a space that no longer exists.
        self.endpoint.fail(exc)

    def _supervise(self) -> None:
        poll = max(0.05, self.heartbeat_timeout / 4)
        while not self._shut_down and self.failure is None:
            now = time.monotonic()
            for space, proc in self._procs.items():
                if not proc.is_alive():
                    self._on_space_failure(
                        space,
                        TransportClosedError(
                            f"address space {space} process exited with "
                            f"code {proc.exitcode}"
                        ),
                    )
                    return
                age = self.endpoint.heartbeat_age(space)
                if age is None:
                    age = now - self._supervisor_started
                if age > self.heartbeat_timeout:
                    self._on_space_failure(
                        space,
                        TransportClosedError(
                            f"address space {space} missed heartbeats for "
                            f"{age:.2f}s (timeout {self.heartbeat_timeout}s)"
                        ),
                    )
                    return
            time.sleep(poll)

    # ==================================================================
    # teardown
    # ==================================================================
    def shutdown(self) -> None:
        """Stop everything; guarantees no orphan processes or shm segments."""
        if self._shut_down:
            return
        self._shut_down = True
        # Final harvest: children's rings and registries die with their
        # processes, so a traced run's telemetry must be pulled out *before*
        # the ShutdownMsg broadcast.  Best-effort — a cluster that is being
        # torn down because it failed still shuts down cleanly.
        if (
            _obs_events.recorder is not None
            and self.failure is None
            and self.telemetry is None
            and self.endpoint is not None
            and not self.endpoint.closed
        ):
            try:
                self.telemetry = self.harvest_telemetry(disarm=True)
            except (StampedeError, TransportError, TransportClosedError):
                pass
        if self.gc_daemon is not None:
            self.gc_daemon.stop()
        if self.endpoint is not None and not self.endpoint.closed:
            for space in self._procs:
                try:
                    self.endpoint.send(
                        space, encode_message_sg(ShutdownMsg("cluster shutdown"))
                    )
                except (TransportError, TransportClosedError):
                    pass  # already unreachable; escalation below handles it
        deadline = time.monotonic() + 5.0
        for proc in self._procs.values():
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs.values():
            if proc.is_alive():
                proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=2.0)
        if getattr(self, "_space", None) is not None:
            self._space.stop()  # closes the endpoint, joins the dispatcher
        if self._ns is not None:
            self._ns.close()
        for ring in self._rings:
            ring.close()
            ring.unlink()
        for proc in self._procs.values():
            if not proc.is_alive():
                proc.close()

    def _emergency_teardown(self) -> None:
        """Constructor failed partway: reclaim whatever exists."""
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=2.0)
        if self.endpoint is not None:
            self.endpoint.close()
        if self._ns is not None:
            self._ns.close()
        for ring in self._rings:
            ring.close()
            ring.unlink()

    def __enter__(self) -> "ProcCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ProcCluster n_spaces={self.n_spaces} session={self.session} "
            f"children={sorted(self._procs)}>"
        )
