"""RPC message vocabulary for cross-address-space Stampede operations.

Every STM operation on a channel homed in another address space becomes a
**synchronous** RPC: the calling thread sends a request to the channel's
home space and blocks until the reply.  Synchrony is not an implementation
convenience — it is what makes the distributed GC minimum safe: while a put
is in flight its producer is blocked, so the producer's visibility (which is
<= the put's timestamp by the §4.2 rules) keeps the global minimum below the
new item's timestamp until the item is registered at its home.  The paper's
Fig. 10 measurements likewise describe put/get as "two, four or more
round-trip communications".

Requests travel wrapped in :class:`RpcRequest`; replies in :class:`RpcReply`
carrying either a value or a pickled exception that is re-raised at the
caller.  One-way messages (GC horizon broadcast, shutdown) skip the reply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.flags import GetWildcard, UNKNOWN_REFCOUNT
from repro.core.gc_state import LocalGCSummary
from repro.core.time import VirtualTime
from repro.transport.serialization import register_message

__all__ = [
    "RpcRequest",
    "RpcReply",
    "RpcCancel",
    "CreateChannelReq",
    "DestroyChannelReq",
    "AttachReq",
    "DetachReq",
    "PutReq",
    "GetReq",
    "ConsumeReq",
    "RegisterNameReq",
    "LookupNameReq",
    "SpawnReq",
    "GcSummaryReq",
    "GcApplyReq",
    "EndpointStatsReq",
    "ClockProbeReq",
    "TelemetryHarvestReq",
    "GcCollectMsg",
    "ShutdownMsg",
    "CachePushMsg",
]


@register_message(1)
@dataclass
class RpcRequest:
    """Envelope for a request expecting a reply."""

    call_id: int
    src_space: int
    body: Any


@register_message(2)
@dataclass
class RpcReply:
    """Envelope for a reply: exactly one of ``value`` / ``error`` is set."""

    call_id: int
    value: Any = None
    error: BaseException | None = None


@register_message(3)
@dataclass
class RpcCancel:
    """Client-side timeout: asks the server to abandon a parked request.

    Races benignly with a completed reply — the client treats whichever
    arrives first as the outcome and drops the loser.
    """

    call_id: int


@dataclass
class CreateChannelReq:
    """Create a channel homed at the receiving space.

    ``push`` enables the §9 optimization ("use information about the
    current connections to a channel to preemptively send data towards
    consumers"): every put is eagerly forwarded to the spaces holding input
    connections, and later gets from those spaces receive a payload-free
    reply resolved against the local push cache.
    """

    name: str | None
    capacity: int | None
    push: bool = False


@dataclass
class DestroyChannelReq:
    channel_id: int


@dataclass
class AttachReq:
    """Attach a connection for a thread with the given current visibility.

    ``visibility`` drives the implicit consumption of items below it when
    attaching an input connection (paper §4.2).
    """

    channel_id: int
    conn_id: int
    is_input: bool
    visibility: VirtualTime = None


@dataclass
class DetachReq:
    channel_id: int
    conn_id: int


@dataclass
class PutReq:
    """Insert ``payload`` (already copy-in encoded) at ``timestamp``."""

    channel_id: int
    conn_id: int
    timestamp: int
    payload: Any
    size: int
    refcount: int = UNKNOWN_REFCOUNT
    block: bool = True


@dataclass
class GetReq:
    """Get by timestamp or wildcard; server parks the request when blocking.

    ``cache_ok``: the requesting space holds a push cache for this channel;
    the server may omit the payload from the reply when it knows the item
    was pushed there (CLF's per-link FIFO guarantees the push landed before
    the reply can).
    """

    channel_id: int
    conn_id: int
    request: int | GetWildcard
    block: bool = True
    cache_ok: bool = False


@dataclass
class ConsumeReq:
    """Consume one timestamp, or everything up to it when ``until`` is set."""

    channel_id: int
    conn_id: int
    timestamp: int
    until: bool = False


@dataclass
class RegisterNameReq:
    """Bind ``name`` to a full channel handle in the cluster registry.

    The registry stores the complete handle (including capacity and copy
    policy) so a looked-up handle behaves identically to the creator's.
    """

    name: str
    handle: Any  # ChannelHandle (kept Any to avoid a circular import)


@dataclass
class LookupNameReq:
    name: str
    #: when True, park until the name appears instead of failing — lets a
    #: consumer start before the producer has created the channel.
    wait: bool = False


@dataclass
class SpawnReq:
    """Create a Stampede thread on the receiving space.

    ``fn`` must be picklable (module-level callable) for remote spawns; the
    child's initial virtual time obeys §4.2 (>= parent's visibility at the
    time of the spawn — guaranteed by spawn being a synchronous RPC).
    """

    fn: Any
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    name: str | None = None
    virtual_time: VirtualTime = None


@dataclass
class GcSummaryReq:
    """Coordinator asks a space for its LocalGCSummary for ``epoch``."""

    epoch: int


@dataclass
class GcApplyReq:
    """Synchronous horizon application (the daemon's RPC broadcast).

    Returns the number of items the receiving space collected.  Used by
    ``GcDaemon.run_once`` so callers observe a fully applied round; the
    one-way :class:`GcCollectMsg` remains for fire-and-forget broadcasts.
    """

    epoch: int
    horizon: VirtualTime


@dataclass
class EndpointStatsReq:
    """Fetch a space's transport-level counters (benchmarks, diagnostics).

    Replies with ``{"clf": ClfStats snapshot, "frames": FrameStats
    snapshot}``.  In the process runtime this is the only way to see a child
    space's counters — ``frame_stats`` is per-process, not shared.
    ``reset_frames`` clears the frame counters after snapshotting so a
    benchmark can measure one put/get cycle in isolation.
    """

    reset_frames: bool = False


@dataclass
class TelemetryHarvestReq:
    """Drain a space's telemetry: recorder rings + metrics registry.

    Replies with a picklable ``ProcessTelemetry`` (see
    :mod:`repro.obs.collect`) whose ``clock_ns`` is the responder's
    monotonic clock at snapshot time; the collector turns the RPC's
    request/response midpoint into a per-child clock offset, putting every
    harvested span on one cluster timeline.  Works with tracing disarmed —
    the registry half (wire bytes, op counters) still ships.
    """

    #: disarm the child's tracer after snapshotting (shutdown harvest).
    disarm: bool = False


@dataclass
class ClockProbeReq:
    """Read a space's monotonic clock (``time.perf_counter_ns``).

    Replies with a bare integer.  The collector fires a few of these per
    child before a telemetry harvest and keeps the estimate from the probe
    with the smallest round trip — the NTP trick — because the harvest RPC
    itself is heavyweight (it pickles every ring) and its round trip bounds
    the clock-offset error.
    """


@register_message(4)
@dataclass
class GcCollectMsg:
    """One-way broadcast of the new global GC horizon."""

    epoch: int
    horizon: VirtualTime


@register_message(5)
@dataclass
class ShutdownMsg:
    """One-way: the cluster is tearing down; dispatcher should exit."""

    reason: str = "shutdown"


@register_message(6)
@dataclass
class CachePushMsg:
    """One-way eager data push (§9) from a channel home to a consumer space.

    Sent at put time to every space holding an input connection on a
    push-enabled channel.  The receiving space stores the payload in its
    push cache; a later payload-free get reply resolves against it.
    """

    channel_id: int
    timestamp: int
    payload: Any
    size: int


#: LocalGCSummary crosses the wire inside RpcReply values; nothing to do —
#: dataclasses pickle by value.  This assertion documents the dependency.
assert LocalGCSummary is not None
