"""Synchronization-primitive factories for the runtime.

Every lock and event the runtime creates goes through :func:`make_lock` /
:func:`make_event` instead of calling ``threading`` directly.  By default
the factories delegate to the sanitizer's :func:`~repro.analysis.sanitizer
.san_lock` (plain ``threading.Lock`` unless ``STMSAN=1``) and to
``threading.Event``, so production behaviour is unchanged.

The indirection exists for :mod:`repro.analysis.modelcheck`: the model
checker installs factories that return cooperative ``ModelLock`` /
``ModelEvent`` objects whose acquire/release/wait/set calls are scheduler
yield points, which is what lets it explore thread interleavings of real
runtime code deterministically.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.analysis.sanitizer import san_lock

__all__ = [
    "make_lock",
    "make_event",
    "install_factories",
    "clear_factories",
    "factories_installed",
]

_lock_factory: Callable[[str], Any] | None = None
_event_factory: Callable[[], Any] | None = None


def make_lock(name: str) -> Any:
    """A mutual-exclusion lock for runtime-internal state.

    ``name`` identifies the lock *class* (used by the sanitizer's
    lock-order graph and by the model checker's independence relation).
    """
    if _lock_factory is not None:
        return _lock_factory(name)
    return san_lock(name)


def make_event() -> Any:
    """An event for blocking waits (e.g. parked local channel waiters)."""
    if _event_factory is not None:
        return _event_factory()
    return threading.Event()


def install_factories(
    lock_factory: Callable[[str], Any] | None,
    event_factory: Callable[[], Any] | None,
) -> None:
    """Override the primitive factories (model checker only).

    Affects primitives created *after* the call; live objects keep whatever
    implementation they were born with.
    """
    global _lock_factory, _event_factory
    _lock_factory = lock_factory
    _event_factory = event_factory


def clear_factories() -> None:
    """Restore the default (sanitizer-aware) factories."""
    install_factories(None, None)


def factories_installed() -> bool:
    """True while non-default factories are active (model checker running).

    The process runtime refuses to launch in this state: cooperative model
    locks only exist in the installing process, so spawned children could
    never honour them — the exploration would silently cover nothing.
    Child processes start from a fresh interpreter (spawn), so they always
    see the default factories regardless of the parent's state.
    """
    return _lock_factory is not None or _event_factory is not None
