"""Stampede threads and their virtual-time state (paper §4.2).

Each application thread carries STM bookkeeping:

* its **virtual time** — an int or INFINITY, explicitly managed by source
  threads and usually INFINITY for interior pipeline threads;
* the set of items it currently holds **open** on its input connections;
* its **visibility** — ``min(virtual time, open item timestamps)`` — the
  smallest timestamp it could still attach to a produced item, and therefore
  its contribution to the global GC minimum.

The rules enforced here:

* ``put`` timestamps must be >= the putting thread's visibility;
* a child thread's initial virtual time must be >= the parent's visibility
  at spawn;
* a thread may change its own virtual time to any value >= its current
  visibility (including INFINITY);
* a new input connection implicitly consumes items below the visibility.
"""

from __future__ import annotations

import contextvars
import threading
from typing import TYPE_CHECKING, Callable

from repro.core.time import INFINITY, VirtualTime, vt_lt, vt_min
from repro.errors import StampedeError, VirtualTimeError, VisibilityError
from repro.obs import events as _obs
from repro.obs.metrics import REGISTRY
from repro.runtime.sync import make_lock

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.address_space import AddressSpace

__all__ = ["StampedeThread", "current_thread", "require_current_thread"]

_tls = threading.local()

#: Task-local binding for the asyncio runtime: every asyncio task carries its
#: own contextvars Context, so a StampedeThread bound here is visible to one
#: task only — the coroutine analogue of the thread-local slot above.  The
#: OS-thread slot stays authoritative for real threads; the context slot wins
#: inside a task (a task never sets the TLS slot, and the loop thread itself
#: is never an adopted Stampede thread while it hosts tasks).
_ctx_thread: contextvars.ContextVar["StampedeThread | None"] = contextvars.ContextVar(
    "stampede_thread", default=None
)


def current_thread() -> "StampedeThread | None":
    """The StampedeThread bound to the calling OS thread or asyncio task."""
    bound = _ctx_thread.get()
    if bound is not None and bound.alive:
        return bound
    return getattr(_tls, "stampede_thread", None)


def require_current_thread() -> "StampedeThread":
    thread = current_thread()
    if thread is None:
        raise StampedeError(
            "no Stampede thread is bound to this OS thread; run inside "
            "AddressSpace.spawn(...) or call AddressSpace.adopt_current_thread()"
        )
    return thread


class StampedeThread:
    """A dynamically created application thread with virtual-time state.

    Instances are created by :meth:`AddressSpace.spawn` (which runs ``fn`` on
    a new OS thread) or :meth:`AddressSpace.adopt_current_thread` (which
    binds STM state to an existing OS thread, e.g. the interpreter's main
    thread in the examples).
    """

    def __init__(
        self,
        space: "AddressSpace",
        name: str,
        virtual_time: VirtualTime = INFINITY,
        parent: "StampedeThread | None" = None,
    ):
        if parent is not None and vt_lt(virtual_time, parent.visibility()):
            raise VirtualTimeError(
                f"child thread {name!r} initial virtual time {virtual_time!r} "
                f"is below parent visibility {parent.visibility()!r} (§4.2)"
            )
        self.space = space
        self.name = name
        self._lock = make_lock("StampedeThread.lock")
        self._virtual_time: VirtualTime = virtual_time
        #: (channel_id, conn_id, timestamp) triples currently open.
        self._open: set[tuple[int, int, int]] = set()
        self._alive = True
        self.os_thread: threading.Thread | None = None
        #: lazily fetched stm_virtual_time gauge — the labels are fixed for
        #: the thread's lifetime, and the registry get-or-create (label
        #: sort + dict lookup under a lock) is too slow for every tick.
        self._vt_gauge = None

    # ------------------------------------------------------------------
    # virtual time and visibility
    # ------------------------------------------------------------------
    @property
    def virtual_time(self) -> VirtualTime:
        with self._lock:
            return self._virtual_time

    def visibility(self) -> VirtualTime:
        """min(virtual time, timestamps of currently open items)."""
        with self._lock:
            return vt_min(
                [self._virtual_time, *(ts for (_, _, ts) in self._open)]
            )

    def set_virtual_time(self, value: VirtualTime) -> None:
        """Set the thread's virtual time (the paper's explicit VT call).

        Any value >= the current *visibility* is legal — including values
        below the current virtual time, as long as an open item already
        holds the visibility down that far.
        """
        with self._lock:
            vis = vt_min([self._virtual_time, *(ts for (_, _, ts) in self._open)])
            if vt_lt(value, vis):
                raise VirtualTimeError(
                    f"cannot set virtual time to {value!r}: below current "
                    f"visibility {vis!r}"
                )
            self._virtual_time = value
        rec = _obs.recorder
        if rec is not None:
            if value is INFINITY:
                rec.instant("vt", "vt.infinity", self.space.space_id,
                            thread=self.name)
                vt_gauge = float("inf")
            else:
                rec.counter("vt", f"vt {self.name}", int(value),
                            self.space.space_id, series="virtual_time")
                vt_gauge = int(value)
            # The gauge is the live-snapshot view of the same signal the
            # counter track records over time: stmtop and the Prometheus
            # endpoint read it without touching the rings.
            gauge = self._vt_gauge
            if gauge is None:
                gauge = self._vt_gauge = REGISTRY.gauge(
                    "stm_virtual_time", space=self.space.space_id,
                    thread=self.name,
                )
            gauge.set(vt_gauge)

    def advance_virtual_time(self, value: VirtualTime) -> None:
        """Alias of :meth:`set_virtual_time`; the paper phrases the GC-progress
        obligation as "advancing" virtual time."""
        self.set_virtual_time(value)

    # ------------------------------------------------------------------
    # open-item tracking (called by the connection layer)
    # ------------------------------------------------------------------
    def note_open(self, channel_id: int, conn_id: int, timestamp: int) -> None:
        with self._lock:
            self._open.add((channel_id, conn_id, timestamp))

    def note_closed(self, channel_id: int, conn_id: int, timestamp: int) -> None:
        with self._lock:
            self._open.discard((channel_id, conn_id, timestamp))

    def note_conn_closed(self, channel_id: int, conn_id: int) -> None:
        """Drop all open entries of a detached connection."""
        with self._lock:
            self._open = {
                entry for entry in self._open if entry[1] != conn_id
            }

    def open_items(self) -> set[tuple[int, int, int]]:
        with self._lock:
            return set(self._open)

    def check_put_timestamp(self, timestamp: int) -> None:
        """Enforce the §4.2 production rule: put timestamp >= visibility."""
        vis = self.visibility()
        if vt_lt(timestamp, vis):
            raise VisibilityError(
                f"thread {self.name!r} cannot put timestamp {timestamp}: "
                f"below its visibility {vis!r} (virtual time "
                f"{self.virtual_time!r}, open items pin the rest)"
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    def _bind(self) -> None:
        _tls.stampede_thread = self

    def _unbind(self) -> None:
        if getattr(_tls, "stampede_thread", None) is self:
            _tls.stampede_thread = None

    def _bind_context(self) -> None:
        """Bind via contextvars (asyncio-task runtime; one binding per task)."""
        _ctx_thread.set(self)

    def _unbind_context(self) -> None:
        if _ctx_thread.get() is self:
            _ctx_thread.set(None)

    def _run(self, fn: Callable, args: tuple, kwargs: dict) -> None:
        """Target wrapper for spawned OS threads."""
        self._bind()
        try:
            fn(*args, **kwargs)
        finally:
            self._unbind()
            self.space._thread_exited(self)
            self._alive = False

    def exit(self) -> None:
        """Deregister an adopted thread (spawned threads exit automatically)."""
        self._unbind()
        self.space._thread_exited(self)
        self._alive = False

    def join(self, timeout: float | None = None) -> None:
        if self.os_thread is not None:
            self.os_thread.join(timeout)
            if self.os_thread.is_alive():
                raise TimeoutError(f"thread {self.name!r} did not exit in {timeout}s")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<StampedeThread {self.name!r} space={self.space.space_id} "
            f"vt={self.virtual_time!r} open={len(self._open)}>"
        )
