"""The Stampede cluster: address spaces wired together over CLF.

A :class:`Cluster` owns the CLF interconnect, the address spaces, the name
registry placement, and the GC daemon.  The paper's deployment — several
AlphaServer SMPs on Memory Channel, one Stampede address space each — maps
to ``Cluster(n_spaces=k, spaces_per_node=1, inter_node=MEMORY_CHANNEL)``.

Typical usage (also see ``examples/``)::

    with Cluster(n_spaces=2) as cluster:
        stm = STM(cluster.space(0))          # facade from repro.stm
        ...

The cluster can also be used single-space (``n_spaces=1``): every operation
then takes the shared-memory fast path, which is the paper's "STM is useful
even on an SMP" configuration.
"""

from __future__ import annotations

import threading

from repro.runtime.address_space import AddressSpace, ChannelHandle
from repro.runtime.gc_daemon import GcDaemon
from repro.transport.clf import ClfNetwork, ClusterTopology
from repro.transport.media import CLF_MTU, MEMORY_CHANNEL, Medium

__all__ = ["Cluster"]


class Cluster:
    """A running Stampede cluster of address spaces.

    Parameters
    ----------
    n_spaces:
        Number of address spaces.
    spaces_per_node:
        Address spaces per (simulated) SMP node; spaces on one node talk
        over shared memory.
    inter_node:
        Medium between nodes (Memory Channel by default, as in the paper).
    gc_period:
        Interval of the distributed GC daemon in seconds; ``None`` disables
        the daemon (tests then drive :meth:`gc_once` explicitly).
    registry_space:
        Which space hosts the channel name registry (default 0).
    dispatchers:
        Start the per-space dispatcher threads (default True).  A
        single-space cluster serves every operation inline on the calling
        thread, so the model checker runs with ``dispatchers=False`` to
        keep the thread set fully under its control.
    """

    #: address-space class this cluster instantiates — the seam the asyncio
    #: runtime (:mod:`repro.runtime.aio`) uses to substitute its own space
    #: type while reusing the interconnect/registry/GC wiring unchanged.
    space_factory = AddressSpace

    def __init__(
        self,
        n_spaces: int = 1,
        spaces_per_node: int = 1,
        inter_node: Medium = MEMORY_CHANNEL,
        gc_period: float | None = 0.05,
        registry_space: int = 0,
        mtu: int = CLF_MTU,
        dispatchers: bool = True,
    ):
        if not 0 <= registry_space < n_spaces:
            raise ValueError(
                f"registry_space {registry_space} out of range [0, {n_spaces})"
            )
        self.n_spaces = n_spaces
        self.registry_space = registry_space
        self.network = ClfNetwork(
            ClusterTopology(n_spaces, spaces_per_node, inter_node), mtu
        )
        self._spaces = [
            self.space_factory(self, i, self.network.endpoint(i))
            for i in range(n_spaces)
        ]
        self._named_handles: dict[str, ChannelHandle] = {}
        self._named_lock = threading.Lock()
        if dispatchers:
            for space in self._spaces:
                space.start()
        self.gc_daemon: GcDaemon | None = None
        self._fallback_gc_daemon: GcDaemon | None = None
        self._fallback_gc_lock = threading.Lock()
        if gc_period is not None:
            self.gc_daemon = GcDaemon(self, period=gc_period)
            self.gc_daemon.start()
        self._shut_down = False

    # ------------------------------------------------------------------
    def space(self, space_id: int) -> AddressSpace:
        return self._spaces[space_id]

    @property
    def spaces(self) -> list[AddressSpace]:
        return list(self._spaces)

    def gc_once(self):
        """Run one synchronous GC round (mainly for tests and examples)."""
        # Reuse one fallback daemon when the periodic one is disabled:
        # GcDaemon._lock serializes whole rounds, and a fresh daemon per
        # call would defeat that (two concurrent gc_once rounds would
        # interleave their scatter/gather phases).
        daemon = self.gc_daemon
        if daemon is None:
            with self._fallback_gc_lock:
                daemon = self._fallback_gc_daemon
                if daemon is None:
                    daemon = self._fallback_gc_daemon = GcDaemon(self, period=1.0)
        return daemon.run_once()

    # -- named-handle cache: avoids re-asking the registry for every lookup.
    def _note_named_handle(self, handle: ChannelHandle) -> None:
        if handle.name is None:
            return
        with self._named_lock:
            self._named_handles[handle.name] = handle

    def _named_handle(self, name: str) -> ChannelHandle | None:
        with self._named_lock:
            return self._named_handles.get(name)

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the GC daemon, dispatchers, and the interconnect."""
        if self._shut_down:
            return
        self._shut_down = True
        if self.gc_daemon is not None:
            self.gc_daemon.stop()
        for space in self._spaces:
            space.stop()
        self.network.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cluster n_spaces={self.n_spaces} "
            f"inter_node={self.network.topology.inter_node.name!r}>"
        )
