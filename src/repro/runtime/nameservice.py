"""Bootstrap name service for the process runtime: space id → endpoint.

Before any CLF traffic can flow, every process in a
:class:`~repro.runtime.procs.ProcCluster` must learn where every other
space listens.  The parent runs one :class:`NameService` on a listening
socket whose port is the *only* address children need (passed in their
spawn arguments); each process — parent included — then calls
:func:`register` with its space id and CLF listener port and blocks until
the service has heard from all ``n_spaces`` participants, at which point
the complete directory ``{space_id: port}`` is broadcast back over the
same connections.  The rendezvous doubles as a startup barrier: no process
proceeds to mesh wiring until every listener exists, so
:meth:`~repro.transport.sockets.SocketEndpoint.connect_mesh` never dials a
port that is not yet bound.

The protocol is one length-prefixed JSON object each way — deliberately
pickle-free, so a confused or stale client cannot execute anything here.
"""

from __future__ import annotations

import json
import socket
import struct
import threading

from repro.errors import TransportError

__all__ = ["NameService", "register"]

_LEN = struct.Struct("<I")
_MAX_MSG = 1 << 20


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < nbytes:
        part = sock.recv(nbytes - len(chunks))
        if not part:
            raise ConnectionError("name service peer closed the connection")
        chunks += part
    return bytes(chunks)


def _send_obj(sock: socket.socket, obj) -> None:
    payload = json.dumps(obj).encode()
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_obj(sock: socket.socket):
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if length > _MAX_MSG:
        raise TransportError(f"name service message of {length} bytes refused")
    return json.loads(_recv_exact(sock, length))


class NameService:
    """Collect ``n_spaces`` registrations, then broadcast the directory.

    Runs an accept thread in the parent process.  Each accepted connection
    is held open until the directory is complete (or :meth:`close` aborts
    the rendezvous, which surfaces as a connection error at every waiting
    registrant — nobody hangs).
    """

    def __init__(self, n_spaces: int):
        if n_spaces < 1:
            raise ValueError(f"n_spaces must be >= 1, got {n_spaces}")
        self.n_spaces = n_spaces
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(n_spaces)
        self.port: int = self._listener.getsockname()[1]
        self._lock = threading.Lock()
        self._waiting: list[socket.socket] = []
        self._directory: dict[int, int] = {}
        self._closed = False
        self._thread = threading.Thread(
            target=self._serve, name="stm-nameservice", daemon=True
        )
        self._thread.start()

    def _serve(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed
            try:
                reg = _recv_obj(conn)
                space, port = int(reg["space"]), int(reg["port"])
            except Exception:
                conn.close()
                continue
            complete = False
            with self._lock:
                if space in self._directory:
                    conn.close()  # duplicate: first registration wins
                    continue
                self._directory[space] = port
                self._waiting.append(conn)
                if len(self._directory) == self.n_spaces:
                    complete = True
                    directory = dict(self._directory)
                    waiting = self._waiting
                    self._waiting = []
            if complete:
                for sock in waiting:
                    try:
                        _send_obj(sock, {"directory": directory})
                    except OSError:
                        pass  # a registrant died mid-rendezvous; its
                        # absence surfaces at connect_mesh instead
                    sock.close()
                return

    @property
    def directory(self) -> dict[int, int]:
        """Registrations seen so far (diagnostics; complete after rendezvous)."""
        with self._lock:
            return dict(self._directory)

    def close(self) -> None:
        """Abort the rendezvous; waiting registrants get a connection error."""
        self._closed = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        with self._lock:
            waiting, self._waiting = self._waiting, []
        for sock in waiting:
            sock.close()
        self._thread.join(timeout=5.0)


def register(
    ns_port: int, space: int, port: int, timeout: float = 30.0
) -> dict[int, int]:
    """Register this process's CLF listener; block for the full directory."""
    try:
        with socket.create_connection(("127.0.0.1", ns_port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            _send_obj(sock, {"space": space, "port": port})
            reply = _recv_obj(sock)
    except (OSError, ConnectionError) as exc:
        raise TransportError(
            f"space {space}: name service rendezvous failed: {exc}"
        ) from exc
    return {int(k): int(v) for k, v in reply["directory"].items()}
