"""Latency-aware pipeline placement (the paper's §9 scheduling direction).

    "A companion paper [12] discusses support for integrating task and data
    parallelism in such dynamic applications.  It explores optimal
    latency-reducing schedules for task- and data-parallel decompositions."

This module implements the static core of that idea for linear pipelines
(the kiosk's shape): given per-stage compute costs and inter-stage item
sizes, predict the per-item latency and the pipeline throughput of every
assignment of stages to address spaces — using the same calibrated medium
models as the simulator — and search for the best placement.

Model
-----
* Stage *i* runs on ``placement[i]``; the channel between stages *i* and
  *i+1* is homed at the consumer's space (the winning policy from the
  placement ablation, and what the §9 push optimization approximates).
* **Latency** of one item = Σ stage compute + Σ edge costs, where an edge
  between co-located stages costs one local copy-in + copy-out and a
  cross-space edge costs one CLF message (payload) + ack + the same copies.
* **Throughput** is set by the slowest *resource*: each space is an SMP
  with ``cpus_per_space`` processors (4 on the paper's AlphaServers), so a
  space's service time is the sum of its stages' compute divided by the
  usable parallelism; each inter-space link's service time is its transfer
  occupancy.  Throughput = 1 / max service time.

The search is exhaustive over ``n_spaces ** n_stages`` placements with
optional pinning (e.g. the digitizer is pinned to the space owning the
frame grabber) — pipelines have few stages, so brute force is exact and
instant.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.sim.costs import DEFAULT_COSTS, SimCosts
from repro.transport.clf import ClusterTopology
from repro.transport.media import CLF_MTU, MEMORY_CHANNEL, Medium

__all__ = [
    "Stage",
    "PipelineModel",
    "PlacementPrediction",
    "predict",
    "optimal_placement",
    "KIOSK_PIPELINE",
]


@dataclass(frozen=True)
class Stage:
    """One pipeline stage: per-item compute and the size of what it emits."""

    name: str
    compute_us: float
    output_bytes: int

    def __post_init__(self):
        if self.compute_us < 0:
            raise ValueError(f"compute_us must be >= 0, got {self.compute_us}")
        if self.output_bytes < 0:
            raise ValueError(
                f"output_bytes must be >= 0, got {self.output_bytes}"
            )


@dataclass(frozen=True)
class PipelineModel:
    """A linear pipeline: stage i's output feeds stage i+1."""

    stages: tuple[Stage, ...]

    def __post_init__(self):
        if len(self.stages) < 1:
            raise ValueError("a pipeline needs at least one stage")

    @property
    def names(self) -> list[str]:
        return [s.name for s in self.stages]


@dataclass(frozen=True)
class PlacementPrediction:
    """Predicted behaviour of one placement."""

    placement: tuple[int, ...]
    latency_us: float
    throughput_fps: float
    #: per-edge cost breakdown (stage i -> i+1), µs.
    edge_costs_us: tuple[float, ...] = field(default=())

    def describe(self, model: PipelineModel) -> str:
        pairs = ", ".join(
            f"{stage.name}@{space}"
            for stage, space in zip(model.stages, self.placement, strict=True)
        )
        return (
            f"[{pairs}] latency={self.latency_us:.0f}us "
            f"throughput={self.throughput_fps:.1f}/s"
        )


def _edge_cost_us(
    nbytes: int,
    src: int,
    dst: int,
    topology: ClusterTopology,
    costs: SimCosts,
) -> float:
    """Per-item cost of moving one output across an edge.

    Mirrors the simulator's put/get sequence with the channel homed at the
    consumer: copy-in, (cross-space) message + ack, copy-out, plus the
    fixed op/synchronization overheads.
    """
    fixed = (
        costs.op_cpu_us * 2  # put + get bookkeeping
        + costs.consume_cpu_us
        + costs.wakeup_us
    )
    copies = 2 * costs.copy_us(nbytes)  # copy-in + copy-out
    if src == dst:
        return fixed + copies
    medium = topology.medium(src, dst)
    transfer = medium.message_latency_us(nbytes + costs.request_header_bytes,
                                         CLF_MTU)
    ack = medium.one_way_latency_us(costs.ack_bytes)
    return fixed + copies + transfer + ack + costs.server_proc_us


def predict(
    model: PipelineModel,
    placement: tuple[int, ...] | list[int],
    topology: ClusterTopology | None = None,
    costs: SimCosts = DEFAULT_COSTS,
    cpus_per_space: int = 4,
) -> PlacementPrediction:
    """Predict latency and throughput of one placement."""
    placement = tuple(placement)
    if len(placement) != len(model.stages):
        raise ValueError(
            f"placement has {len(placement)} entries for "
            f"{len(model.stages)} stages"
        )
    topology = topology or ClusterTopology(max(placement) + 1)
    for space in placement:
        if not 0 <= space < topology.n_spaces:
            raise ValueError(f"space {space} out of range")

    edge_costs = []
    latency = sum(stage.compute_us for stage in model.stages)
    for i in range(len(model.stages) - 1):
        cost = _edge_cost_us(
            model.stages[i].output_bytes,
            placement[i],
            placement[i + 1],
            topology,
            costs,
        )
        edge_costs.append(cost)
        latency += cost

    # Throughput: the busiest resource bounds the item rate.
    service_times = []
    for space in set(placement):
        compute = sum(
            stage.compute_us
            for stage, sp in zip(model.stages, placement, strict=True)
            if sp == space
        )
        parallelism = min(cpus_per_space, max(
            1, sum(1 for sp in placement if sp == space)
        ))
        service_times.append(compute / parallelism)
    for i in range(len(model.stages) - 1):
        src, dst = placement[i], placement[i + 1]
        if src != dst:
            medium = topology.medium(src, dst)
            nbytes = model.stages[i].output_bytes
            n_full, rest = divmod(nbytes, CLF_MTU)
            occupancy = n_full * medium.packet_service_us(CLF_MTU)
            occupancy += medium.packet_service_us(rest) if rest else 0
            service_times.append(occupancy)
    bottleneck = max(service_times) if service_times else 1.0
    throughput = 1e6 / bottleneck if bottleneck > 0 else float("inf")

    return PlacementPrediction(
        placement=placement,
        latency_us=latency,
        throughput_fps=throughput,
        edge_costs_us=tuple(edge_costs),
    )


def optimal_placement(
    model: PipelineModel,
    n_spaces: int,
    objective: str = "latency",
    pinned: dict[str, int] | None = None,
    topology: ClusterTopology | None = None,
    costs: SimCosts = DEFAULT_COSTS,
    cpus_per_space: int = 4,
) -> PlacementPrediction:
    """Exhaustively search for the best placement.

    ``pinned`` maps stage names to fixed spaces (hardware-bound stages).
    ``objective`` is ``latency`` (minimize) or ``throughput`` (maximize).
    """
    if objective not in ("latency", "throughput"):
        raise ValueError(f"unknown objective {objective!r}")
    pinned = pinned or {}
    unknown = set(pinned) - set(model.names)
    if unknown:
        raise ValueError(f"pinned stages not in the pipeline: {sorted(unknown)}")
    topology = topology or ClusterTopology(n_spaces)

    choices = [
        [pinned[stage.name]] if stage.name in pinned else list(range(n_spaces))
        for stage in model.stages
    ]
    best: PlacementPrediction | None = None
    for placement in itertools.product(*choices):
        prediction = predict(model, placement, topology, costs, cpus_per_space)
        if best is None:
            best = prediction
        elif objective == "latency" and prediction.latency_us < best.latency_us:
            best = prediction
        elif (
            objective == "throughput"
            and prediction.throughput_fps > best.throughput_fps
        ):
            best = prediction
    assert best is not None
    return best


#: The kiosk pipeline of Fig. 2 as a placement model: compute costs are
#: representative of the reproduction's trackers; item sizes are the real
#: record sizes (frames dominate).
KIOSK_PIPELINE = PipelineModel(
    stages=(
        Stage("digitizer", compute_us=500.0, output_bytes=230_400),
        Stage("lofi_tracker", compute_us=8_000.0, output_bytes=512),
        Stage("decision", compute_us=300.0, output_bytes=256),
        Stage("gui", compute_us=200.0, output_bytes=0),
    )
)
