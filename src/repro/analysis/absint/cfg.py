"""Per-function control-flow-graph IR for the abstract interpreter.

Every scope (module body, function, method, nested closure) is lowered to a
small instruction language over basic blocks with explicit edges for
branches, loops, ``try``/``except``/``finally``, ``with`` (including the
auto-detaching ``with attach(...) as conn:`` form), and the async variants.
The worklist engine in :mod:`repro.analysis.absint.engine` then runs
abstract domains (:mod:`~repro.analysis.absint.typestate`,
:mod:`~repro.analysis.absint.vtime`) to a fixpoint over this IR — one flow
engine for every flow-sensitive rule in the tree, replacing the lexical
"statement path" approximation of the original protolint walker.

Lowering decisions that matter for soundness:

* ``finally`` bodies sit on *every* edge out of their ``try`` region —
  normal completion, ``return``/``break``/``continue``, and the
  exceptional pass-through — so a ``detach`` in a ``finally`` reaches the
  function exit on all paths (the classic STM205 false-positive shape).
* ``with attach(...) as conn:`` lowers to an ``attach`` followed by a
  synthetic finally region holding the ``detach``, so early exits from the
  body still detach.
* Exception edges are added only *inside* ``try`` statements (body block →
  handler entry / finally entry).  Implicit "any statement may raise"
  edges to the function exit are deliberately omitted: they would flood
  the exit join with half-finished states and drown every must-fact.
* A ``Name`` load that is only *tested* (``if conn is not None:``) is a
  ``test`` instruction, not a ``use``: testing a connection does not leak
  it, which keeps guarded-cleanup idioms analyzable instead of escaping.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Instr", "Block", "CFG", "Scope", "collect_scopes", "build_cfg"]

# vocabulary (kept in sync with protolint's / stmgraph's)
_ATTACH_INPUT = {"attach_input", "spd_attach_input_channel"}
_ATTACH_OUTPUT = {"attach_output", "spd_attach_output_channel"}
_GET = {"get", "spd_channel_get_item"}
_GET_CONSUME = {"get_consume"}
_CONSUME = {"consume", "spd_channel_consume_item"}
_CONSUME_UNTIL = {"consume_until", "spd_channel_consume_items_until"}
_PUT = {"put", "spd_channel_put_item"}
_DETACH = {"detach", "spd_detach_channel"}
_OP_METHODS = _GET | _GET_CONSUME | _CONSUME | _CONSUME_UNTIL | _PUT | _DETACH
#: spd_* free functions take the connection as their first argument.
_SPD_FUNCS = {n for n in _OP_METHODS if n.startswith("spd_")}
_SPD_ATTACH = {"spd_attach_input_channel", "spd_attach_output_channel"}


@dataclass
class Instr:
    """One abstract instruction.  ``kind`` selects the meaningful fields:

    * ``attach`` — var, direction, site, line
    * ``op``     — op (get/get_consume/consume/consume_until/put/detach),
                   var (receiver name), ts (request/timestamp expr AST or
                   None), item (var bound by a get), awaited, blocking
    * ``call``   — callee (resolvable plain-name calls only), conn_args
                   (positional Name arguments, pos → var), awaited
    * ``alias``  — dst, src (``conn2 = conn``)
    * ``assign`` — dst, expr (everything else that binds a name)
    * ``use``    — var (a Load that may leak the value)
    * ``test``   — var (a Load in a pure truth/None test — no leak)
    * ``kill``   — var (binding destroyed, value unknown)
    """

    kind: str
    line: int
    var: str | None = None
    direction: str | None = None
    site: str | None = None
    op: str | None = None
    ts: ast.expr | None = None
    item: str | None = None
    awaited: bool = False
    blocking: bool = True
    callee: str | None = None
    conn_args: dict[int, str] = field(default_factory=dict)
    dst: str | None = None
    src: str | None = None
    expr: ast.expr | None = None
    #: unique id within the scope (symbolic-base seed for get bindings)
    uid: int = 0


@dataclass
class Block:
    bid: int
    instrs: list[Instr] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    is_loop_head: bool = False

    def edge(self, to: int) -> None:
        if to not in self.succs:
            self.succs.append(to)


@dataclass
class SiteInfo:
    """One attach site in a scope (the typestate object it creates)."""

    site: str
    var: str | None
    direction: str
    line: int


@dataclass
class CFG:
    qualname: str
    file: str
    line: int
    is_async: bool
    params: list[str]
    blocks: dict[int, Block]
    entry: int
    exit: int
    sites: dict[str, SiteInfo]

    def reachable(self) -> list[int]:
        """Block ids reachable from entry, in id order."""
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            stack.extend(self.blocks[bid].succs)
        return sorted(seen)


@dataclass
class Scope:
    """One analyzable scope: the AST body plus its stmgraph identity."""

    file: str
    qualname: str
    line: int
    params: list[str]
    is_async: bool
    body: list[ast.stmt]


def collect_scopes(tree: ast.Module, file: str) -> list[Scope]:
    """Mirror stmgraph's scope traversal (and its qualnames, so each scope
    lines up with its per-function summary): the module body, plain
    functions (recursively, qualified ``<module>.f.g``), and methods of
    module-level classes (``Class.method``)."""
    out: list[Scope] = []

    def outer_defs(
        stmts: list[ast.stmt],
    ) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        """Outermost function defs under these statements, not descending
        into other scopes (defs, classes, lambdas)."""
        found: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        queue: list[ast.AST] = list(stmts)
        while queue:
            node = queue.pop(0)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found.append(node)
            elif not isinstance(node, (ast.ClassDef, ast.Lambda)):
                queue.extend(ast.iter_child_nodes(node))
        return found

    def walk(body: list[ast.stmt], qualname: str, params: list[str],
             line: int, is_async: bool) -> None:
        out.append(Scope(file, qualname, line, params, is_async, body))
        for fn in outer_defs(body):
            walk(
                fn.body,
                f"{qualname}.{fn.name}",
                [a.arg for a in fn.args.args],
                fn.lineno,
                isinstance(fn, ast.AsyncFunctionDef),
            )

    walk(tree.body, "<module>", [], 1, False)
    stack: list[tuple[ast.ClassDef, str]] = [
        (n, "") for n in tree.body if isinstance(n, ast.ClassDef)
    ]
    while stack:
        cls, prefix = stack.pop()
        for child in cls.body:
            if isinstance(child, ast.ClassDef):
                stack.append((child, f"{prefix}{cls.name}."))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk(
                    child.body,
                    f"{prefix}{cls.name}.{child.name}",
                    [a.arg for a in child.args.args],
                    child.lineno,
                    isinstance(child, ast.AsyncFunctionDef),
                )
    return out


@dataclass
class _FinallyCtx:
    """One active finally region (real ``finally:`` or a with-attach
    epilogue): abrupt exits inside the region route through ``entry`` and
    register their real target as an extra successor of the region exit."""

    entry: int
    exit_block: int | None          # None: the finally itself never falls out
    extra: set[int] = field(default_factory=set)


class _Builder:
    def __init__(self, scope: Scope) -> None:
        self.scope = scope
        self.blocks: dict[int, Block] = {}
        self.sites: dict[str, SiteInfo] = {}
        self._next = 0
        self._uid = 0
        self.entry = self.new_block().bid
        self.exit = self.new_block().bid
        self.cur: Block | None = self.blocks[self.entry]
        #: (head_bid, after_bid, finally_depth at loop entry)
        self.loops: list[tuple[int, int, int]] = []
        self.finallys: list[_FinallyCtx] = []
        #: handler-entry bids of the innermost enclosing try-with-handlers
        self.handlers: list[list[int]] = []
        self.build()

    # -- plumbing ---------------------------------------------------------

    def new_block(self) -> Block:
        b = Block(self._next)
        self.blocks[self._next] = b
        self._next += 1
        return b

    def emit(self, instr: Instr) -> None:
        if self.cur is not None:
            instr.uid = self._uid
            self._uid += 1
            self.cur.instrs.append(instr)

    def _goto(self, bid: int) -> None:
        if self.cur is not None:
            self.cur.edge(bid)
        self.cur = self.blocks[bid]

    def _abrupt(self, target: int, through_finallys: int = 0) -> None:
        """End the current block with a jump to ``target``, routing through
        the ``through_finallys`` innermost finally regions (approximated by
        the innermost one; the union-join at the exit keeps this sound)."""
        if self.cur is None:
            return
        if through_finallys and self.finallys:
            ctx = self.finallys[-1]
            ctx.extra.add(target)
            self.cur.edge(ctx.entry)
        else:
            self.cur.edge(target)
        self.cur = None  # dead until the next label

    def build(self) -> None:
        self.visit_body(self.scope.body)
        if self.cur is not None:
            self.cur.edge(self.exit)

    # -- statements -------------------------------------------------------

    def visit_body(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if self.cur is None:
                # unreachable code after return/raise/…: still lower it into
                # a fresh preds-less block so nested defs register escapes
                # consistently, but it stays bottom in the fixpoint.
                self.cur = self.new_block()
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:  # noqa: PLR0912 - dispatcher
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # separate scopes (or opaque class bodies): captured names leak
            self._emit_closure_uses(stmt)
        elif isinstance(stmt, ast.If):
            self._visit_if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._visit_while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_for(stmt)
        elif isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            self._visit_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
        elif isinstance(stmt, ast.Match):
            self._visit_match(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._lower_expr(stmt.value)
            self._abrupt(self.exit, through_finallys=len(self.finallys))
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._lower_expr(stmt.exc)
            if self.handlers:
                if self.cur is not None:
                    for h in self.handlers[-1]:
                        self.cur.edge(h)
                    self.cur = None
            else:
                self._abrupt(self.exit, through_finallys=len(self.finallys))
        elif isinstance(stmt, ast.Break):
            if self.loops:
                head, after, fdepth = self.loops[-1]
                self._abrupt(after, through_finallys=len(self.finallys) - fdepth)
            else:
                self.cur = None
        elif isinstance(stmt, ast.Continue):
            if self.loops:
                head, after, fdepth = self.loops[-1]
                self._abrupt(head, through_finallys=len(self.finallys) - fdepth)
            else:
                self.cur = None
        else:
            self._lower_simple(stmt)

    def _visit_if(self, stmt: ast.If) -> None:
        self._lower_expr(stmt.test, test=True)
        branch = self.cur
        after = self.new_block()
        then = self.new_block()
        if branch is not None:
            branch.edge(then.bid)
        self.cur = then
        self.visit_body(stmt.body)
        if self.cur is not None:
            self.cur.edge(after.bid)
        if stmt.orelse:
            orelse = self.new_block()
            if branch is not None:
                branch.edge(orelse.bid)
            self.cur = orelse
            self.visit_body(stmt.orelse)
            if self.cur is not None:
                self.cur.edge(after.bid)
        elif branch is not None:
            branch.edge(after.bid)
        self.cur = self.blocks[after.bid]

    def _visit_while(self, stmt: ast.While) -> None:
        head = self.new_block()
        head.is_loop_head = True
        after = self.new_block()
        self._goto(head.bid)
        self._lower_expr(stmt.test, test=True)
        head_end = self.cur
        body = self.new_block()
        if head_end is not None:
            head_end.edge(body.bid)
            # ``while True:`` has no false edge; anything else can skip
            if not (isinstance(stmt.test, ast.Constant) and stmt.test.value is True):
                head_end.edge(after.bid)
        self.loops.append((head.bid, after.bid, len(self.finallys)))
        self.cur = body
        self.visit_body(stmt.body)
        if self.cur is not None:
            self.cur.edge(head.bid)
        self.loops.pop()
        if stmt.orelse:
            orelse = self.new_block()
            if head_end is not None:
                head_end.edge(orelse.bid)
            self.cur = orelse
            self.visit_body(stmt.orelse)
            if self.cur is not None:
                self.cur.edge(after.bid)
        self.cur = self.blocks[after.bid]

    def _visit_for(self, stmt: ast.For | ast.AsyncFor) -> None:
        self._lower_expr(stmt.iter)
        head = self.new_block()
        head.is_loop_head = True
        after = self.new_block()
        self._goto(head.bid)
        head.edge(after.bid)  # empty iterable
        body = self.new_block()
        head.edge(body.bid)
        self.cur = body
        self._kill_target(stmt.target)
        self.loops.append((head.bid, after.bid, len(self.finallys)))
        self.visit_body(stmt.body)
        if self.cur is not None:
            self.cur.edge(head.bid)
        self.loops.pop()
        if stmt.orelse:
            orelse = self.new_block()
            head.edge(orelse.bid)
            self.cur = orelse
            self.visit_body(stmt.orelse)
            if self.cur is not None:
                self.cur.edge(after.bid)
        self.cur = self.blocks[after.bid]

    def _visit_try(self, stmt: ast.Try) -> None:
        after = self.new_block()
        fin_ctx: _FinallyCtx | None = None
        if stmt.finalbody:
            fin_entry = self.new_block()
            saved = self.cur
            self.cur = fin_entry
            # the try body may have stopped anywhere before this point:
            # item/timestamp must-facts do not survive into the region
            self.emit(Instr("havoc", stmt.lineno))
            self.visit_body(stmt.finalbody)
            fin_exit = self.cur.bid if self.cur is not None else None
            self.cur = saved
            fin_ctx = _FinallyCtx(fin_entry.bid, fin_exit)

        handler_entries = [self.new_block() for _ in stmt.handlers]

        # try body
        body_entry = self.new_block()
        self._goto(body_entry.bid)
        first_body_block = len(self.blocks)
        body_first = body_entry.bid
        if fin_ctx is not None:
            self.finallys.append(fin_ctx)
        if handler_entries:
            self.handlers.append([h.bid for h in handler_entries])
        self.visit_body(stmt.body)
        body_end = self.cur
        if handler_entries:
            self.handlers.pop()
        # any block of the try region may raise into any handler / finally
        region = [body_first] + [
            b for b in range(first_body_block, len(self.blocks))
        ]
        for bid in region:
            blk = self.blocks.get(bid)
            if blk is None or blk.bid == after.bid:
                continue
            for h in handler_entries:
                blk.edge(h.bid)
            if fin_ctx is not None:
                # matched handlers route later; an unmatched exception
                # type still runs the finally on its way out
                blk.edge(fin_ctx.entry)
        # else: runs after a clean body
        self.cur = body_end
        if stmt.orelse:
            if self.cur is not None:
                orelse = self.new_block()
                self.cur.edge(orelse.bid)
                self.cur = orelse
                self.visit_body(stmt.orelse)
        normal_end = self.cur

        # handlers
        handler_ends: list[Block] = []
        for handler, entry in zip(stmt.handlers, handler_entries, strict=True):
            self.cur = entry
            self.emit(Instr("havoc", handler.lineno))
            if handler.type is not None:
                self._lower_expr(handler.type)
            if handler.name:
                self.emit(Instr("kill", handler.lineno, dst=handler.name))
            self.visit_body(handler.body)
            if self.cur is not None:
                handler_ends.append(self.cur)
            # an uncaught re-raise inside the handler still hits the finally
            if fin_ctx is not None:
                entry.edge(fin_ctx.entry)

        if fin_ctx is not None:
            self.finallys.pop()
            for end in [normal_end, *handler_ends]:
                if end is not None:
                    end.edge(fin_ctx.entry)
            if fin_ctx.exit_block is not None:
                fexit = self.blocks[fin_ctx.exit_block]
                fexit.edge(after.bid)
                fexit.edge(self.exit)  # exceptional pass-through
                for target in fin_ctx.extra:
                    fexit.edge(target)
        else:
            for end in [normal_end, *handler_ends]:
                if end is not None:
                    end.edge(after.bid)
        self.cur = self.blocks[after.bid]

    def _visit_with(self, stmt: ast.With | ast.AsyncWith) -> None:
        detaches: list[Instr] = []
        for item in stmt.items:
            ctx = item.context_expr
            unwrapped = _unwrap(ctx)
            direction = _attach_direction(unwrapped)
            if direction is not None and isinstance(unwrapped, ast.Call):
                var = (
                    item.optional_vars.id
                    if isinstance(item.optional_vars, ast.Name)
                    else None
                )
                # receiver expression of the attach still evaluates
                self._lower_call_subexprs(unwrapped)
                if var is not None:
                    site = self._attach(var, direction, ctx.lineno)
                    detaches.append(
                        Instr("op", ctx.lineno, op="detach", var=var, site=site)
                    )
            elif isinstance(ctx, ast.Name):
                # ``with conn:`` — the context manager detaches on exit
                detaches.append(Instr("op", ctx.lineno, op="detach", var=ctx.id))
                if isinstance(item.optional_vars, ast.Name):
                    self.emit(Instr("kill", ctx.lineno, dst=item.optional_vars.id))
            else:
                self._lower_expr(ctx)
                if isinstance(item.optional_vars, ast.Name):
                    self.emit(Instr("kill", ctx.lineno, dst=item.optional_vars.id))
                elif item.optional_vars is not None:
                    self._kill_target(item.optional_vars)
        if not detaches:
            self.visit_body(stmt.body)
            return
        # synthetic finally region: the detach(es) run on every exit
        epilogue = self.new_block()
        for ins in detaches:
            self.cur, saved = epilogue, self.cur
            self.emit(ins)
            self.cur = saved
        after = self.new_block()
        fin = _FinallyCtx(epilogue.bid, epilogue.bid)
        self.finallys.append(fin)
        self.visit_body(stmt.body)
        self.finallys.pop()
        if self.cur is not None:
            self.cur.edge(epilogue.bid)
        epilogue.edge(after.bid)
        epilogue.edge(self.exit)
        for target in fin.extra:
            epilogue.edge(target)
        self.cur = self.blocks[after.bid]

    def _visit_match(self, stmt: ast.Match) -> None:
        self._lower_expr(stmt.subject)
        subject = self.cur
        after = self.new_block()
        for case in stmt.cases:
            body = self.new_block()
            if subject is not None:
                subject.edge(body.bid)
            self.cur = body
            for name in _pattern_names(case.pattern):
                self.emit(Instr("kill", stmt.lineno, dst=name))
            if case.guard is not None:
                self._lower_expr(case.guard, test=True)
            self.visit_body(case.body)
            if self.cur is not None:
                self.cur.edge(after.bid)
        if subject is not None:
            subject.edge(after.bid)  # no case may match
        self.cur = self.blocks[after.bid]

    # -- simple statements & expressions ----------------------------------

    def _attach(self, var: str, direction: str, line: int) -> str:
        site = f"a{len(self.sites)}"
        self.sites[site] = SiteInfo(site, var, direction, line)
        self.emit(Instr("attach", line, var=var, direction=direction, site=site))
        return site

    def _kill_target(self, target: ast.expr) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                self.emit(Instr("kill", node.lineno, dst=node.id))
            elif isinstance(node, (ast.Attribute, ast.Subscript)):
                self._lower_expr(node.value)

    def _emit_closure_uses(self, stmt: ast.stmt) -> None:
        """Names loaded inside a nested def/class body leak from this scope
        (the legacy walker's escape rule; obligations may move elsewhere)."""
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                self.emit(Instr("use", sub.lineno, var=sub.id))

    def _lower_simple(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._lower_assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._lower_assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            synth = ast.BinOp(
                left=ast.Name(id=stmt.target.id, ctx=ast.Load()),
                op=stmt.op,
                right=stmt.value,
            ) if isinstance(stmt.target, ast.Name) else None
            self._lower_expr(stmt.value)
            if synth is not None and isinstance(stmt.target, ast.Name):
                ast.copy_location(synth, stmt)
                ast.copy_location(synth.left, stmt)
                self.emit(Instr("assign", stmt.lineno, dst=stmt.target.id, expr=synth))
            else:
                self._kill_target(stmt.target)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._kill_target(target)
        elif isinstance(stmt, ast.Expr):
            self._lower_expr(stmt.value)
        elif isinstance(stmt, ast.Assert):
            self._lower_expr(stmt.test, test=True)
            if stmt.msg is not None:
                self._lower_expr(stmt.msg)
        elif isinstance(
            stmt, (ast.Pass, ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal)
        ):
            pass
        else:  # pragma: no cover - future statement kinds degrade gracefully
            self._lower_expr_children(stmt)

    def _lower_expr_children(self, stmt: ast.stmt) -> None:
        for _name, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                self._lower_expr(value)
            elif isinstance(value, list):
                for v in value:
                    if isinstance(v, ast.expr):
                        self._lower_expr(v)

    # .. the expression lowering core .....................................

    def _lower_assign(self, targets: list[ast.expr], value: ast.expr) -> None:
        pairs: list[tuple[ast.expr, ast.expr]] = []
        unwrapped = _unwrap(value)
        for target in targets:
            if (
                isinstance(target, ast.Tuple)
                and isinstance(unwrapped, ast.Tuple)
                and len(target.elts) == len(unwrapped.elts)
            ):
                pairs.extend(zip(target.elts, unwrapped.elts, strict=True))
            else:
                pairs.append((target, value))
        binds: list[Instr] = []
        item_binds: dict[int, str] = {}
        recognized: set[int] = set()
        handled: set[int] = set()
        for target, val in pairs:
            uv = _unwrap(val)
            if not isinstance(target, ast.Name):
                self._kill_target(target)
                self._lower_expr(val)
                handled.add(id(val))
                continue
            direction = _attach_direction(uv)
            if direction is not None and isinstance(uv, ast.Call):
                self._lower_call_subexprs(uv)
                self._attach(target.id, direction, target.lineno)
                handled.add(id(val))
                continue
            get_call = _get_call(uv)
            if get_call is not None:
                # bind travels on the op instruction itself
                item_binds[id(get_call)] = target.id
            elif isinstance(uv, ast.Name):
                recognized.add(id(uv))
                binds.append(
                    Instr("alias", target.lineno, dst=target.id, src=uv.id)
                )
            else:
                binds.append(
                    Instr("assign", target.lineno, dst=target.id, expr=uv)
                )
        # loads/calls/ops of the RHS (original exprs: the awaited-call walk
        # must still see enclosing ``await``s), with item binds attached
        for _target, val in pairs:
            if id(val) in handled:
                continue
            self._lower_expr(val, item_binds=item_binds, recognized=recognized)
        for ins in binds:
            self.emit(ins)

    def _lower_call_subexprs(self, call: ast.Call) -> None:
        """Evaluate an attach call's receiver/arguments for their loads."""
        func = call.func
        if isinstance(func, ast.Attribute):
            self._lower_expr(func.value)
        for arg in call.args:
            self._lower_expr(arg)
        for kw in call.keywords:
            self._lower_expr(kw.value)

    def _lower_expr(
        self,
        expr: ast.expr,
        test: bool = False,
        item_binds: dict[int, str] | None = None,
        recognized: set[int] | None = None,
    ) -> None:
        """Emit loads, generic calls, and STM ops for one expression, in
        uses-before-ops order (a use at a ``consume`` line reads the value
        before the consume lands)."""
        item_binds = item_binds or {}
        recognized = set(recognized or ())
        awaited: set[int] = set()
        ops: list[tuple[ast.Call, str, str, ast.expr | None]] = []
        calls: list[ast.Call] = []
        test_ids = _test_name_ids(expr) if test else set()

        for node in ast.walk(expr):
            # ``item.timestamp`` reads immutable handle metadata — safe
            # after consume (only payloads are reclaimed), so it is a
            # non-leaking test-style load, not a use
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "timestamp"
                and isinstance(node.value, ast.Name)
            ):
                test_ids.add(id(node.value))
            if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                awaited.add(id(node.value))
            if isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                get_call = _get_call(_unwrap(node.value))
                if get_call is not None:
                    item_binds[id(get_call)] = node.target.id
                else:
                    self.emit(Instr("kill", node.lineno, dst=node.target.id))
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _OP_METHODS
                and isinstance(func.value, ast.Name)
            ):
                recognized.add(id(func.value))
                ops.append((node, _op_kind(func.attr), func.value.id,
                            node.args[0] if node.args else None))
            elif isinstance(func, ast.Name) and func.id in _SPD_FUNCS:
                if node.args and isinstance(node.args[0], ast.Name):
                    recognized.add(id(node.args[0]))
                    ops.append(
                        (node, _op_kind(func.id), node.args[0].id,
                         node.args[1] if len(node.args) > 1 else None)
                    )
            elif isinstance(func, ast.Name) and func.id not in _SPD_ATTACH:
                calls.append(node)
                for pos, arg in enumerate(node.args):
                    if isinstance(arg, ast.Name):
                        recognized.add(id(arg))

        # 1. plain loads (skipping recognized op receivers / call args);
        #    loads under a lambda still leak (legacy escape rule).
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in recognized
            ):
                kind = "test" if id(node) in test_ids else "use"
                self.emit(Instr(kind, node.lineno, var=node.id))

        # 2. generic calls (interprocedural summary application)
        for node in calls:
            conn_args = {
                pos: arg.id
                for pos, arg in enumerate(node.args)
                if isinstance(arg, ast.Name)
            }
            self.emit(
                Instr(
                    "call",
                    node.lineno,
                    callee=node.func.id,
                    conn_args=conn_args,
                    awaited=id(node) in awaited,
                )
            )

        # 3. STM ops
        for node, kind, var, ts in ops:
            self.emit(
                Instr(
                    "op",
                    node.lineno,
                    op=kind,
                    var=var,
                    ts=ts,
                    item=item_binds.get(id(node)),
                    awaited=id(node) in awaited,
                    blocking=_blocking(node),
                )
            )


# ----------------------------------------------------------------------
# small helpers
# ----------------------------------------------------------------------
def _unwrap(value: ast.expr) -> ast.expr:
    while isinstance(value, (ast.Await, ast.YieldFrom)):
        value = value.value
    if isinstance(value, ast.Yield) and value.value is not None:
        return value.value
    return value


def _attach_direction(value: ast.expr) -> str | None:
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = None
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    if name in _ATTACH_INPUT:
        return "input"
    if name in _ATTACH_OUTPUT:
        return "output"
    return None


def _get_call(value: ast.expr) -> ast.Call | None:
    """``conn.get(...)`` / ``conn.get_consume(...)`` / ``spd_channel_get_item(conn, ...)``."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _GET | _GET_CONSUME
        and isinstance(func.value, ast.Name)
    ):
        return value
    if (
        isinstance(func, ast.Name)
        and func.id in _SPD_FUNCS & (_GET | _GET_CONSUME)
        and value.args
        and isinstance(value.args[0], ast.Name)
    ):
        return value
    return None


def _op_kind(name: str) -> str:
    if name in _GET:
        return "get"
    if name in _GET_CONSUME:
        return "get_consume"
    if name in _CONSUME:
        return "consume"
    if name in _CONSUME_UNTIL:
        return "consume_until"
    if name in _PUT:
        return "put"
    return "detach"


def _blocking(node: ast.Call) -> bool:
    blocking = True
    for kw in node.keywords:
        if kw.arg == "block" and isinstance(kw.value, ast.Constant):
            blocking = bool(kw.value.value)
        if kw.arg == "timeout" and not (
            isinstance(kw.value, ast.Constant) and kw.value.value is None
        ):
            blocking = False
    return blocking


def _test_name_ids(expr: ast.expr) -> set[int]:
    """Name nodes whose load is a pure truth/None test (no leak)."""
    out: set[int] = set()
    stack: list[ast.expr] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            out.add(id(node))
        elif isinstance(node, ast.BoolOp):
            stack.extend(node.values)
        elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            stack.append(node.operand)
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            if any(
                isinstance(o, ast.Constant) and o.value is None for o in operands
            ):
                stack.extend(
                    o for o in operands if isinstance(o, ast.Name)
                )
    return out


def _pattern_names(pattern: ast.pattern) -> list[str]:
    names: list[str] = []
    for node in ast.walk(pattern):
        name = getattr(node, "name", None)
        if isinstance(name, str):
            names.append(name)
    return names


def build_cfg(scope: Scope) -> CFG:
    builder = _Builder(scope)
    return CFG(
        qualname=scope.qualname,
        file=scope.file,
        line=scope.line,
        is_async=scope.is_async,
        params=scope.params,
        blocks=builder.blocks,
        entry=builder.entry,
        exit=builder.exit,
        sites=builder.sites,
    )
