"""Interprocedural context: stmgraph summary composition and STM603.

The abstract interpreter stays per-function; everything cross-function
comes from stmgraph's linked program (`summarize_program`): call-site
resolution, transitive per-parameter may-effects (``_Effects.params``),
blocking verdicts for STM604, and resolved channel identities for STM603.

On top of the may-effects this module computes **must-transforms**: for a
callee parameter, the typestate exit join obtained by running the engine
on the callee's own CFG with the parameter seeded ``{attached}``.  A
caller holding a must-``{attached}`` connection can then apply the callee
exactly — which is what turns ``helper_detach(conn); conn.put(...)`` into
a cross-function STM203 and keeps ``helper_cleanup(conn)`` out of STM205.
``None`` means "cannot summarize" (recursion, escapes, no source): the
caller escapes the connection, never reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..findings import Finding
from ..source import SourceFile
from ..stmgraph import _module_constants, summarize_program
from .cfg import CFG, Scope, build_cfg, collect_scopes
from .domains import ATTACHED

__all__ = ["ProgramContext", "check_growth"]

_ATT_ONLY = frozenset({ATTACHED})


@dataclass
class _SourceScopes:
    src: SourceFile
    scopes: list[Scope]


class ProgramContext:
    """Everything one `check_absint` run shares across scopes."""

    def __init__(self, sources: list[SourceFile]) -> None:
        self.sources = sources
        self.prog, self.effects = summarize_program(sources)
        self.consts: dict[str, dict[str, object]] = {
            src.display: _module_constants(src.tree) for src in sources
        }
        self.per_source: list[_SourceScopes] = [
            _SourceScopes(src, collect_scopes(src.tree, src.display))
            for src in sources
        ]
        self._scope_index: dict[tuple[str, str], Scope] = {}
        for entry in self.per_source:
            for scope in entry.scopes:
                self._scope_index[(scope.file, scope.qualname)] = scope
        self._summary_index = {
            (s.module, s.qualname): s for s in self.prog.summaries
        }
        self._cfgs: dict[tuple[str, str], CFG] = {}
        self._transforms: dict[str, dict[int, frozenset[str] | None]] = {}
        self._in_progress: set[str] = set()

    # -- lookups ---------------------------------------------------------

    def cfg_for(self, scope: Scope) -> CFG:
        key = (scope.file, scope.qualname)
        cfg = self._cfgs.get(key)
        if cfg is None:
            cfg = build_cfg(scope)
            self._cfgs[key] = cfg
        return cfg

    def summary_for(self, scope: Scope):
        return self._summary_index.get((scope.file, scope.qualname))

    def resolve(self, name: str, caller) -> list:
        if caller is not None:
            return self.prog.resolve(name, caller)
        return self.prog.by_name.get(name, [])

    # -- must-transform summaries ---------------------------------------

    def must_transform(self, callee, pos: int) -> frozenset[str] | None:
        """Typestate exit join of ``callee``'s parameter ``pos`` starting
        from ``{attached}``, or None if it cannot be summarized."""
        table = self._transforms.get(callee.id)
        if table is None:
            table = self._compute_transforms(callee)
            self._transforms[callee.id] = table
        return table.get(pos, _ATT_ONLY)

    def _compute_transforms(self, callee) -> dict[int, frozenset[str] | None]:
        scope = self._scope_index.get((callee.module, callee.qualname))
        nparams = len(callee.params)
        opaque = {i: None for i in range(nparams)}
        if scope is None or callee.id in self._in_progress:
            return opaque
        self._in_progress.add(callee.id)
        try:
            from .engine import analyze_cfg

            result = analyze_cfg(
                self.cfg_for(scope),
                self,
                callee,
                self.consts.get(callee.module, {}),
                seed_params=True,
                report=False,
            )
            return result.param_exit
        finally:
            self._in_progress.discard(callee.id)


# ----------------------------------------------------------------------
# STM603: unbounded channel growth
# ----------------------------------------------------------------------
@dataclass
class _ChannelUse:
    """All resolved attachments of one named channel across the program."""

    producers: list[tuple[str, str, int]] = field(default_factory=list)
    consumers: list[tuple[set[str], bool]] = field(default_factory=list)
    opaque: bool = False                # some consumer we cannot see through


def check_growth(ctx: ProgramContext) -> list[Finding]:
    """STM603 — a channel some producer puts into while no input
    connection anywhere ever consumes, advances the horizon
    (``consume_until``), or even detaches: every put pins an item forever,
    so the kernel's storage grows without bound (the static complement of
    the runtime GC invariants).  Channels with *no* consumer at all are
    STM503's (orphan) domain and are skipped here."""
    channels: dict[str, _ChannelUse] = {}

    def use(key: str) -> _ChannelUse:
        return channels.setdefault(key, _ChannelUse())

    for fn in ctx.prog.summaries:
        for var, decl in fn.conns.items():
            if not isinstance(decl.channel, str):
                continue
            kinds, _bg, _bp, _helpers, lines = ctx.effects.conn_kinds(fn, var)
            if decl.direction == "output":
                if "put" in kinds:
                    use(decl.channel).producers.append(
                        (fn.file, var, lines.get("put", decl.line))
                    )
            else:
                use(decl.channel).consumers.append((kinds, decl.escaped))
        # a channel handed to a helper that attaches its parameter: credit
        # the helper's connection ops to the channel (one level; anything
        # deeper is opaque and suppresses the rule for that channel)
        for call in fn.calls:
            chan_args = {
                pos: val[1]
                for pos, val in call.args.items()
                if val[0] == "chan" and isinstance(val[1], str)
            }
            if not chan_args:
                continue
            callees = ctx.prog.resolve(call.callee, fn)
            if not callees:
                for key in chan_args.values():
                    use(key).opaque = True
                continue
            for callee in callees:
                attached_positions = set()
                for pa in callee.param_attaches:
                    attached_positions.add(pa.param)
                    key = chan_args.get(pa.param)
                    if key is None:
                        continue
                    if pa.conn_var is None:
                        use(key).opaque = True
                        continue
                    kinds, _bg, _bp, _helpers, lines = ctx.effects.conn_kinds(
                        callee, pa.conn_var
                    )
                    decl = callee.conns.get(pa.conn_var)
                    escaped = bool(decl and decl.escaped)
                    if pa.direction == "output":
                        if "put" in kinds:
                            use(key).producers.append(
                                (callee.file, pa.conn_var,
                                 lines.get("put", pa.line))
                            )
                    else:
                        use(key).consumers.append((kinds, escaped))
                # the channel may also be forwarded deeper — opaque
                for sub in callee.calls:
                    for _pos, val in sub.args.items():
                        if val[0] == "fwd" and val[1] in chan_args:
                            use(chan_args[val[1]]).opaque = True

    findings: list[Finding] = []
    for key in sorted(channels):
        ch = channels[key]
        if ch.opaque or not ch.producers or not ch.consumers:
            continue
        if any(esc for _kinds, esc in ch.consumers):
            continue
        if any(
            {"consume", "detach"} & kinds for kinds, _esc in ch.consumers
        ):
            continue
        file, var, line = ch.producers[0]
        findings.append(
            Finding(
                "STM603",
                file,
                line,
                f"channel '{key}': '{var}' puts items but no attached "
                "input connection ever consumes or detaches — the GC "
                "horizon never advances and the channel grows without "
                "bound",
            )
        )
    return findings
