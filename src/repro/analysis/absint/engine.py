"""Worklist fixpoint engine over the absint CFG, plus replay reporting.

One analysis run has three phases:

1. **fixpoint** — classic worklist iteration computing the join of
   :class:`~.state.AbsState` over every block entry, with interval
   widening at loop heads after a few visits;
2. **collect replay** — re-execute every reachable block from its fixed
   entry state, gathering per-attach-site facts (escapes, op kinds,
   helper effects, rebinds) into :class:`~.typestate.SiteFlags`;
3. **report replay** — the same walk again, now emitting point findings
   (STM203 must-detached ops, STM204/STM601 put regressions, STM602
   horizon violations, STM604 async blocking, STM202 stale item uses)
   with full escape knowledge, followed by the scope-end verdicts
   (STM201/STM205) against the exit join.

The same function doubles as the interprocedural summary builder: with
``seed_params=True`` each parameter is bound to a pseudo-site starting
``{attached}``, reporting is disabled, and the exit join per parameter
becomes the callee's must-transform used at call sites.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field

from ..findings import Finding
from . import vtime
from .cfg import CFG, Instr
from .domains import ATTACHED, DETACHED, UNATTACHED, Val
from .state import AbsState, UNBOUND, join
from .typestate import SiteFlags, apply_kinds, report_scope, transition

__all__ = ["ScopeResult", "analyze_cfg"]

_WIDEN_AFTER = 3
_MAX_STEPS = 20000
_DET_ONLY = frozenset({DETACHED})
_ATT_ONLY = frozenset({ATTACHED})
_UNATT = frozenset({UNATTACHED})
#: stmgraph effect kinds that actually touch items on the connection
_TOUCH_KINDS = {"get", "put", "consume"}


@dataclass
class ScopeResult:
    findings: list[Finding]
    param_exit: dict[int, frozenset[str] | None]


@dataclass
class _Sink:
    file: str
    flags: dict[str, SiteFlags] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)
    report: bool = False
    _seen: set[tuple] = field(default_factory=set)

    def flag(self, site: str) -> SiteFlags:
        return self.flags.setdefault(site, SiteFlags())

    def emit(self, rule: str, line: int, message: str) -> None:
        key = (rule, line, message)
        if key not in self._seen:
            self._seen.add(key)
            self.findings.append(Finding(rule, self.file, line, message))


@dataclass
class _Env:
    cfg: CFG
    ctx: object          # interproc.ProgramContext
    summary: object      # stmgraph _Summary for this scope (or None)
    consts: dict[str, object]
    file: str


# ----------------------------------------------------------------------
# the transfer function
# ----------------------------------------------------------------------
def _transfer(instr: Instr, state: AbsState, env: _Env, sink: _Sink | None) -> None:
    kind = instr.kind
    if kind == "attach":
        _attach(instr, state, sink)
    elif kind == "op":
        _op(instr, state, env, sink)
    elif kind == "call":
        _call(instr, state, env, sink)
    elif kind == "alias":
        _alias(instr, state, sink)
    elif kind == "assign":
        val = vtime.eval_expr(instr.expr, state, env.consts)
        _note_rebound(state, instr.dst, sink)
        state.kill(instr.dst)
        if val is not None:
            state.num[instr.dst] = val
    elif kind == "kill":
        _note_rebound(state, instr.dst, sink)
        state.kill(instr.dst)
    elif kind == "use":
        if sink is not None:
            for site in state.conn.get(instr.var, ()):
                if site != UNBOUND:
                    sink.flag(site).escaped = True
            _item_use(instr.var, instr.line, state, env, sink)
    elif kind == "havoc":
        # entering an except/finally region: the try body may have stopped
        # anywhere, so per-path must-facts about items and timestamps die
        for var, binds in list(state.items.items()):
            state.items[var] = frozenset((s, True) for s, _fresh in binds)
        state.last_put.clear()
        state.horizon.clear()
        state.last_consume.clear()
    # "test" is deliberately a no-op: a truth/None check leaks nothing


def _note_rebound(
    state: AbsState, var: str | None, sink: _Sink | None, keep: str | None = None
) -> None:
    if sink is None or var is None:
        return
    for site in state.conn.get(var, ()):
        if site not in (UNBOUND, keep):
            sink.flag(site).rebound = True


def _attach(instr: Instr, state: AbsState, sink: _Sink | None) -> None:
    _note_rebound(state, instr.var, sink, keep=instr.site)
    state.kill(instr.var)
    state.conn[instr.var] = frozenset({instr.site})
    state.objs[instr.site] = _ATT_ONLY
    for table in (state.last_put, state.horizon, state.last_consume):
        table.pop(instr.site, None)
    # item bindings from a previous attach epoch of this site make no claims
    for var, binds in list(state.items.items()):
        kept = frozenset(b for b in binds if b[0] != instr.site)
        if kept:
            state.items[var] = kept
        else:
            del state.items[var]


def _alias(instr: Instr, state: AbsState, sink: _Sink | None) -> None:
    src = instr.src
    refs = state.conn.get(src)
    items = state.items.get(src)
    num = state.num.get(src)
    dotted = {
        k: v for k, v in state.num.items() if k.startswith(f"{src}.")
    }
    _note_rebound(state, instr.dst, sink)
    state.kill(instr.dst)
    if refs is not None:
        state.conn[instr.dst] = refs
    if items is not None:
        state.items[instr.dst] = items
    if num is not None:
        state.num[instr.dst] = num
    for key, val in dotted.items():
        state.num[instr.dst + key[len(src):]] = val


def _stale_items(state: AbsState, sites: set[str]) -> None:
    for var, binds in list(state.items.items()):
        state.items[var] = frozenset(
            (s, False if s in sites else fresh) for s, fresh in binds
        )


def _item_use(
    var: str, line: int, state: AbsState, env: _Env, sink: _Sink
) -> None:
    binds = state.items.get(var)
    if not binds or not sink.report:
        return
    if all(not fresh for _s, fresh in binds) and all(
        s in env.cfg.sites and not sink.flag(s).escaped for s, _fresh in binds
    ):
        sink.emit(
            "STM202",
            line,
            f"item '{var}' is used after being consumed on every path "
            "reaching this line: the payload may already be reclaimed",
        )


def _op(instr: Instr, state: AbsState, env: _Env, sink: _Sink | None) -> None:
    refs = state.conn.get(instr.var, frozenset())
    real = sorted(s for s in refs if s != UNBOUND)
    if not real:
        # ``x.get(...)`` on something that is not a tracked connection
        if instr.op in ("get", "get_consume") and instr.item:
            state.kill(instr.item)
        return
    strong = len(refs) == 1
    wildcard = vtime.is_wildcard(instr.ts)
    ts_val = None if wildcard else vtime.eval_expr(instr.ts, state, env.consts)

    if sink is not None:
        for site in real:
            sink.flag(site).note_op(instr.op, instr.line)

    if sink is not None and sink.report:
        _op_point_rules(instr, state, env, sink, real, strong, wildcard, ts_val)

    # typestate transition (strong when the receiver is unambiguous)
    for site in real:
        cur = state.objs.get(site, _UNATT)
        nxt = transition(cur, instr.op)
        state.objs[site] = nxt if strong else cur | nxt

    if instr.op in ("consume", "consume_until", "get_consume") and strong:
        _stale_items(state, set(real))
    if instr.op in ("get", "get_consume") and instr.item:
        state.kill(instr.item)
        state.items[instr.item] = frozenset((s, True) for s in real)
        vtime.bind_get(state, instr.uid, instr.item, ts_val, instr.line)
    if instr.op == "put":
        literal = isinstance(instr.ts, ast.Constant)
        vtime.apply_put(state, real, strong, ts_val, instr.line, literal)
    elif instr.op == "consume":
        vtime.apply_consume(state, real, strong, ts_val, instr.line)
    elif instr.op == "consume_until":
        vtime.apply_consume_until(state, real, strong, ts_val, instr.line)


def _op_point_rules(
    instr: Instr,
    state: AbsState,
    env: _Env,
    sink: _Sink,
    real: list[str],
    strong: bool,
    wildcard: bool,
    ts_val: Val | None,
) -> None:
    if (
        env.cfg.is_async
        and strong
        and instr.blocking
        and not instr.awaited
        and instr.op in ("get", "get_consume", "put")
    ):
        sink.emit(
            "STM604",
            instr.line,
            f"blocking '{instr.op}' inside async scope "
            f"'{env.cfg.qualname}' stalls the event loop; use the aio "
            "facade (await) or pass block=False / a timeout",
        )
    must = strong and state.objs.get(real[0]) == _DET_ONLY
    if instr.op != "detach" and must:
        sink.emit(
            "STM203",
            instr.line,
            f"connection '{instr.var}' is detached on every path reaching "
            f"this {instr.op}",
        )
    if instr.op == "put" and strong and ts_val is not None:
        prev = vtime.regression(state, real[0], ts_val)
        if prev is not None:
            literal_pair = prev.literal and isinstance(instr.ts, ast.Constant)
            rule = "STM204" if literal_pair else "STM601"
            sink.emit(
                rule,
                instr.line,
                f"put timestamp on '{instr.var}' is provably below the "
                f"put at line {prev.line}: virtual time must not regress "
                "on a connection",
            )
    if (
        instr.op in ("get", "get_consume", "consume")
        and strong
        and not wildcard
        and ts_val is not None
    ):
        hit = vtime.below_horizon(state, real[0], ts_val)
        if hit is not None:
            rec, why = hit
            sink.emit(
                "STM602",
                instr.line,
                f"'{instr.op}' on '{instr.var}' requests a timestamp "
                f"{why} (line {rec.line}): guaranteed "
                "ItemGarbageCollectedError/AlreadyConsumedError",
            )


def _call(instr: Instr, state: AbsState, env: _Env, sink: _Sink | None) -> None:
    ctx = env.ctx
    if (
        sink is not None
        and sink.report
        and env.cfg.is_async
        and not instr.awaited
    ):
        for cand in ctx.resolve(instr.callee, env.summary):
            if cand.is_async:
                continue
            blocking, why = ctx.effects.blocking_stm(cand)
            if blocking:
                sink.emit(
                    "STM604",
                    instr.line,
                    f"sync call to '{instr.callee}' ({why or 'blocks on STM'}) "
                    f"from async scope '{env.cfg.qualname}' stalls the "
                    "event loop",
                )
                break
    for pos in sorted(instr.conn_args):
        var = instr.conn_args[pos]
        if sink is not None:
            _item_use(var, instr.line, state, env, sink)
        refs = state.conn.get(var, frozenset())
        real = sorted(s for s in refs if s != UNBOUND)
        if not real:
            continue
        strong = len(refs) == 1
        candidates = ctx.resolve(instr.callee, env.summary)
        if not candidates:
            if sink is not None:
                for site in real:
                    sink.flag(site).escaped = True
            continue
        kinds: set[str] = set()
        must: frozenset[str] = frozenset()
        opaque = False
        for cand in candidates:
            eff = ctx.effects.params(cand).get(pos)
            if eff is not None:
                kinds |= set(eff.kinds)
            exit_states = ctx.must_transform(cand, pos)
            if exit_states is None:
                opaque = True
                break
            must |= exit_states
        if opaque:
            if sink is not None:
                for site in real:
                    sink.flag(site).escaped = True
            continue
        if sink is not None and kinds:
            for site in real:
                flag = sink.flag(site)
                flag.helpers_took = True
                flag.helper_kinds |= kinds
        if (
            sink is not None
            and sink.report
            and strong
            and state.objs.get(real[0]) == _DET_ONLY
            and kinds & _TOUCH_KINDS
        ):
            sink.emit(
                "STM203",
                instr.line,
                f"connection '{var}' is detached on every path when passed "
                f"to '{instr.callee}', which performs "
                f"{'/'.join(sorted(kinds & _TOUCH_KINDS))} on it",
            )
        for site in real:
            cur = state.objs.get(site, _UNATT)
            if strong and cur == _ATT_ONLY:
                state.objs[site] = must
            else:
                state.objs[site] = apply_kinds(cur, kinds)
        if "put" in kinds:
            for site in real:
                state.last_put.pop(site, None)
        if "consume" in kinds:
            for site in real:
                state.last_consume.pop(site, None)


# ----------------------------------------------------------------------
# fixpoint + replay
# ----------------------------------------------------------------------
def analyze_cfg(
    cfg: CFG,
    ctx: object,
    summary: object,
    consts: dict[str, object],
    seed_params: bool = False,
    report: bool = True,
) -> ScopeResult:
    env = _Env(cfg, ctx, summary, consts, cfg.file)
    entry = AbsState()
    for idx, param in enumerate(cfg.params):
        entry.num[param] = Val.symbol(f"param:{param}")
        if seed_params:
            site = f"p{idx}"
            entry.conn[param] = frozenset({site})
            entry.objs[site] = _ATT_ONLY

    in_states: dict[int, AbsState | None] = {cfg.entry: entry}
    visits: dict[int, int] = {}
    work: deque[int] = deque([cfg.entry])
    steps = 0
    while work:
        steps += 1
        if steps > _MAX_STEPS:
            # give up on this scope rather than report from a partial
            # (unsound-for-must-facts) fixpoint
            return ScopeResult([], {i: None for i in range(len(cfg.params))})
        bid = work.popleft()
        st = in_states.get(bid)
        if st is None:
            continue
        out = st.copy()
        for instr in cfg.blocks[bid].instrs:
            _transfer(instr, out, env, None)
        for succ in cfg.blocks[bid].succs:
            visits[succ] = visits.get(succ, 0) + 1
            widen = (
                cfg.blocks[succ].is_loop_head
                and visits[succ] > _WIDEN_AFTER
            )
            merged = join(in_states.get(succ), out, widen=widen)
            if merged != in_states.get(succ):
                in_states[succ] = merged
                if succ not in work:
                    work.append(succ)

    # replay passes over the reachable blocks in program order
    sink = _Sink(cfg.file)
    order = [bid for bid in cfg.reachable() if in_states.get(bid) is not None]
    for phase_report in (False, True) if report else (False,):
        sink.report = phase_report
        for bid in order:
            st = in_states[bid].copy()
            for instr in cfg.blocks[bid].instrs:
                _transfer(instr, st, env, sink)

    if report:
        report_scope(cfg, sink.flags, in_states.get(cfg.exit), sink.findings)

    param_exit: dict[int, frozenset[str] | None] = {}
    if seed_params:
        exit_state = in_states.get(cfg.exit)
        for idx in range(len(cfg.params)):
            site = f"p{idx}"
            if exit_state is None or sink.flags.get(site, SiteFlags()).escaped:
                param_exit[idx] = None
            else:
                param_exit[idx] = exit_state.objs.get(site, _ATT_ONLY)
    return ScopeResult(sink.findings, param_exit)
