"""Symbolic virtual-time interval domain: evaluation and the STM204 /
STM601 / STM602 point rules.

Timestamps are :class:`~.domains.Val` — ``base + [lo, hi]`` where the
base is a symbol minted fresh at each ``get`` binding site (so
``item.timestamp - 1`` is comparable to ``item.timestamp`` without
knowing either).  Rebinding a ``get`` on a loop back-edge re-mints its
base, which first invalidates every fact referring to the previous
incarnation — cross-iteration comparisons are never made against a stale
symbol.  All checks here are *must* facts over the joined intervals:

* STM204 — a literal put timestamp strictly below the previous literal
  put (the legacy straight-line rule, kept under its historical id);
* STM601 — the same regression with at least one computed/symbolic
  operand, along any path;
* STM602 — a ``get``/``consume`` of a timestamp provably at or below the
  connection's GC horizon (``consume_until``) or equal to an exact prior
  ``consume`` — a guaranteed ``ItemGarbageCollectedError`` /
  ``AlreadyConsumedError`` at runtime.
"""

from __future__ import annotations

import ast

from .domains import NEG_INF, POS_INF, TsRec, Val
from .state import AbsState

__all__ = [
    "WILDCARDS", "eval_expr", "is_wildcard", "regression",
    "below_horizon", "apply_put", "apply_consume", "apply_consume_until",
    "bind_get",
]

WILDCARDS = {
    "STM_LATEST",
    "STM_OLDEST",
    "STM_LATEST_UNSEEN",
    "STM_OLDEST_UNSEEN",
    "LATEST",
    "OLDEST",
    "LATEST_UNSEEN",
    "OLDEST_UNSEEN",
}


def is_wildcard(expr: ast.expr | None) -> bool:
    if expr is None:
        return True  # ``get()`` defaults to STM_LATEST_UNSEEN
    if isinstance(expr, ast.Name):
        return expr.id in WILDCARDS
    if isinstance(expr, ast.Attribute):
        return expr.attr in WILDCARDS
    return False


def eval_expr(
    expr: ast.expr | None, state: AbsState, consts: dict[str, object]
) -> Val | None:
    if expr is None or is_wildcard(expr):
        return None
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, int) and not isinstance(expr.value, bool):
            return Val.const(expr.value)
        return None
    if isinstance(expr, ast.Name):
        val = state.num.get(expr.id)
        if val is not None:
            return val
        const = consts.get(expr.id)
        if isinstance(const, int) and not isinstance(const, bool):
            return Val.const(const)
        return None
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        return state.num.get(f"{expr.value.id}.{expr.attr}")
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        v = eval_expr(expr.operand, state, consts)
        if v is not None and v.base is None:
            return Val(None, -v.hi, -v.lo)
        return None
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.Add, ast.Sub)):
        left = eval_expr(expr.left, state, consts)
        right = eval_expr(expr.right, state, consts)
        if left is None or right is None:
            return None
        if isinstance(expr.op, ast.Sub):
            if right.base is None:
                return Val(left.base, left.lo - right.hi, left.hi - right.lo)
            return None
        if right.base is None:
            return Val(left.base, left.lo + right.lo, left.hi + right.hi)
        if left.base is None:
            return Val(right.base, right.lo + left.lo, right.hi + left.hi)
    return None


# ----------------------------------------------------------------------
# point checks (replay pass — read the state *before* the update lands)
# ----------------------------------------------------------------------
def regression(state: AbsState, site: str, val: Val) -> TsRec | None:
    """The previous put this one provably regresses below, if any."""
    prev = state.last_put.get(site)
    if prev is not None and val.definitely_lt(prev.val):
        return prev
    return None


def below_horizon(state: AbsState, site: str, val: Val) -> tuple[TsRec, str] | None:
    hz = state.horizon.get(site)
    if hz is not None and val.definitely_le(hz.val):
        return hz, "at or below the GC horizon advanced by consume_until"
    lc = state.last_consume.get(site)
    if lc is not None and val.definitely_eq(lc.val):
        return lc, "equal to the timestamp already consumed"
    return None


# ----------------------------------------------------------------------
# state updates
# ----------------------------------------------------------------------
def apply_put(
    state: AbsState, sites: list[str], strong: bool,
    val: Val | None, line: int, literal: bool,
) -> None:
    for site in sites:
        if strong and val is not None:
            state.last_put[site] = TsRec(val, line, literal)
        else:
            state.last_put.pop(site, None)


def apply_consume(
    state: AbsState, sites: list[str], strong: bool, val: Val | None, line: int
) -> None:
    for site in sites:
        if strong and val is not None and val.is_singleton():
            state.last_consume[site] = TsRec(val, line)
        else:
            state.last_consume.pop(site, None)


def apply_consume_until(
    state: AbsState, sites: list[str], strong: bool, val: Val | None, line: int
) -> None:
    """``consume_until(ts)`` guarantees consumed-through ≥ ts; it only
    advances, so an unknown ts keeps the previous (still valid) bound."""
    if val is None or not strong:
        return
    for site in sites:
        old = state.horizon.get(site)
        if old is not None and old.val.base == val.base:
            merged = Val(
                val.base, max(old.val.lo, val.lo), max(old.val.hi, val.hi)
            )
            state.horizon[site] = TsRec(merged, line)
        else:
            state.horizon[site] = TsRec(val, line)


def bind_get(
    state: AbsState, uid: int, item: str | None,
    request: Val | None, line: int,
) -> None:
    """Bind ``item = conn.get(...)``: mint this site's symbolic base anew
    (invalidating the previous loop iteration's facts first) unless the
    request pins the timestamp exactly."""
    if item is None:
        return
    key = f"{item}.timestamp"
    base = f"g{uid}"
    state.invalidate_base(base)
    if request is not None and NEG_INF < request.lo and request.hi < POS_INF:
        state.num[key] = request
    else:
        state.num[key] = Val.symbol(base)
