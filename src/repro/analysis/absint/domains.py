"""Abstract value domains for the STM abstract interpreter.

Two cooperating lattices:

* the **connection typestate** lattice — a powerset over the base states
  ``unattached < attached < gotten < consumed < detached``; a singleton set
  is a *must* fact, a larger set records the join of diverging paths
  (⊤ = all five).  Represented directly as ``frozenset[str]``.
* the **symbolic virtual-time** domain — :class:`Val`, an integer interval
  ``[lo, hi]`` optionally anchored to a symbolic base (``b + [lo, hi]``).
  Bases are minted fresh at every ``get`` binding site, which makes
  same-base comparisons (``t - 1 < t``) decidable without knowing ``t``.

Joins are set-union / interval hulls; :func:`widen_val` drops unstable
bounds to ±∞ so loop counters converge.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "UNATTACHED", "ATTACHED", "GOTTEN", "CONSUMED", "DETACHED",
    "STATES_TOP", "Val", "TsRec", "join_states", "join_val", "widen_val",
    "join_rec", "NEG_INF", "POS_INF",
]

UNATTACHED = "unattached"
ATTACHED = "attached"
GOTTEN = "gotten"
CONSUMED = "consumed"
DETACHED = "detached"
STATES_TOP = frozenset({UNATTACHED, ATTACHED, GOTTEN, CONSUMED, DETACHED})

NEG_INF = float("-inf")
POS_INF = float("inf")


def join_states(a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
    return a | b


@dataclass(frozen=True)
class Val:
    """``base + [lo, hi]`` with ``base=None`` meaning a concrete interval."""

    base: str | None
    lo: float
    hi: float

    @staticmethod
    def const(n: int) -> "Val":
        return Val(None, n, n)

    @staticmethod
    def symbol(base: str) -> "Val":
        return Val(base, 0, 0)

    def shift(self, n: float) -> "Val":
        return Val(self.base, self.lo + n, self.hi + n)

    def is_singleton(self) -> bool:
        return self.lo == self.hi

    # -- ordering facts (None = unknown) --------------------------------

    def definitely_lt(self, other: "Val") -> bool:
        """True iff every concretization of self < every one of other."""
        if self.base != other.base:
            return False
        return self.hi < other.lo

    def definitely_le(self, other: "Val") -> bool:
        if self.base != other.base:
            return False
        return self.hi <= other.lo

    def definitely_eq(self, other: "Val") -> bool:
        return (
            self.base == other.base
            and self.is_singleton()
            and other.is_singleton()
            and self.lo == other.lo
        )


def join_val(a: Val | None, b: Val | None) -> Val | None:
    """Interval hull; incomparable bases (or a missing side) go to ⊤ (None)."""
    if a is None or b is None or a.base != b.base:
        return None
    return Val(a.base, min(a.lo, b.lo), max(a.hi, b.hi))


def widen_val(a: Val | None, b: Val | None) -> Val | None:
    """Classic interval widening: unstable bounds jump to ±∞."""
    if a is None or b is None or a.base != b.base:
        return None
    lo = a.lo if b.lo >= a.lo else NEG_INF
    hi = a.hi if b.hi <= a.hi else POS_INF
    return Val(a.base, lo, hi)


@dataclass(frozen=True)
class TsRec:
    """A timestamp fact recorded at a program point: the last ``put`` on a
    connection, the ``consume_until`` horizon, or an exact consume point."""

    val: Val
    line: int
    literal: bool = False


def join_rec(a: TsRec | None, b: TsRec | None, widen: bool = False) -> TsRec | None:
    if a is None or b is None:
        return None
    v = widen_val(a.val, b.val) if widen else join_val(a.val, b.val)
    if v is None:
        return None
    return TsRec(v, max(a.line, b.line), a.literal and b.literal)
