"""Abstract interpreter for STM programs (the ``absint`` pass).

A per-function CFG IR (:mod:`~repro.analysis.absint.cfg`) plus a worklist
fixpoint engine (:mod:`~repro.analysis.absint.engine`) running two
cooperating abstract domains:

* a **connection-typestate lattice** (unattached → attached → gotten →
  consumed → detached, powerset joins) re-implementing the STM2xx
  protocol rules path-sensitively — ``detach`` inside ``finally``,
  conditional re-attach, and ``conn2 = conn`` aliasing are understood
  instead of false-positives, and stmgraph summaries make detach-in-callee
  visible across function boundaries;
* a **symbolic virtual-time interval domain** over timestamps, powering
  STM601 (non-monotonic put), STM602 (get/consume at or below the GC
  horizon), STM603 (unbounded channel growth) and STM604 (blocking sync
  STM call in an ``async def`` scope).

`check_protocol` is the STM2xx-only pass the CLI's ``protolint`` entry
now routes through; `check_absint` adds the STM6xx rules and backs the
``absint`` subcommand.
"""

from __future__ import annotations

from ..findings import Finding, sort_findings
from ..source import SourceFile
from .engine import analyze_cfg
from .interproc import ProgramContext, check_growth

__all__ = ["check_absint", "check_protocol"]


def _run(sources: list[SourceFile], prefixes: tuple[str, ...]) -> list[Finding]:
    ctx = ProgramContext(sources)
    findings: list[Finding] = []
    for entry in ctx.per_source:
        consts = ctx.consts.get(entry.src.display, {})
        for scope in entry.scopes:
            result = analyze_cfg(
                ctx.cfg_for(scope), ctx, ctx.summary_for(scope), consts
            )
            findings.extend(result.findings)
    if any(p.startswith("STM6") for p in prefixes):
        findings.extend(check_growth(ctx))
    return sort_findings(
        [f for f in findings if f.rule_id.startswith(prefixes)]
    )


def check_absint(sources: list[SourceFile]) -> list[Finding]:
    """The full abstract-interpretation pass: STM2xx + STM6xx."""
    return _run(sources, ("STM2", "STM6"))


def check_protocol(sources: list[SourceFile]) -> list[Finding]:
    """CFG-based STM2xx protocol checking (the ``protolint`` pass)."""
    return _run(sources, ("STM2",))
