"""Connection-typestate lattice: transitions and scope-end verdicts.

States live in the powerset over ``unattached → attached → gotten →
consumed → detached``; a singleton is a *must* fact.  The point rules
(STM203 on a must-detached receiver, interprocedural variants at call
sites) fire during replay in the engine; this module owns the pure
transition algebra and the end-of-scope rules that need the exit join:

* STM201 — an input connection with direct ``get``s whose exit can never
  have consumed (no direct or transitive consume), and
* STM205 — an attach site whose exit-state join does not contain
  ``detached`` (i.e. *no* path detached it).  Because a ``detach`` inside
  a ``finally`` region reaches the exit on every CFG path, the legacy
  walker's lexical blind spots cannot resurface here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..findings import Finding
from .cfg import CFG
from .domains import ATTACHED, CONSUMED, DETACHED, GOTTEN
from .state import AbsState

__all__ = ["transition", "apply_kinds", "SiteFlags", "report_scope"]

#: states an operation advances (errors like get-after-detach do not
#: rewrite the state — the point rule reports them, and keeping the state
#: stable avoids cascading reports)
_ACTIVE = frozenset({ATTACHED, GOTTEN, CONSUMED})


def transition(states: frozenset[str], op: str) -> frozenset[str]:
    if op in ("get", "get_consume"):
        target = CONSUMED if op == "get_consume" else GOTTEN
        return frozenset(target if s in _ACTIVE else s for s in states)
    if op in ("consume", "consume_until"):
        return frozenset(CONSUMED if s in _ACTIVE else s for s in states)
    if op == "detach":
        return frozenset({DETACHED})
    return states  # put keeps the connection active


def apply_kinds(states: frozenset[str], kinds: set[str]) -> frozenset[str]:
    """May-effect of a callee described only by stmgraph op kinds: the
    union of every possible transition (including "did nothing")."""
    out = states
    for kind in kinds:
        out = out | transition(states, kind)
    return out


@dataclass
class SiteFlags:
    """Facts about one attach site gathered on the reachable replay."""

    direct: set[str] = field(default_factory=set)     # op kinds seen
    lines: dict[str, int] = field(default_factory=dict)
    helper_kinds: set[str] = field(default_factory=set)
    helpers_took: bool = False
    escaped: bool = False
    rebound: bool = False
    has_detach: bool = False

    def note_op(self, kind: str, line: int) -> None:
        self.direct.add(kind)
        self.lines.setdefault(kind, line)
        if kind == "detach":
            self.has_detach = True

    @property
    def lonely(self) -> bool:
        """Attach with no ops, no helper, no escape, no rebind at all —
        the legacy "attach and forget" STM205 shape."""
        return not (
            self.direct or self.helper_kinds or self.helpers_took
            or self.escaped or self.rebound
        )


def report_scope(
    cfg: CFG,
    flags: dict[str, SiteFlags],
    exit_state: AbsState | None,
    findings: list[Finding],
) -> None:
    for site, info in cfg.sites.items():
        f = flags.get(site)
        if f is None or f.escaped:
            continue

        # STM201: gets but can never consume (directly or via helpers).
        consumed = (
            {"consume", "consume_until", "get_consume"} & f.direct
            or {"consume", "detach"} & f.helper_kinds
        )
        if (
            info.direction == "input"
            and "get" in f.direct
            and not consumed
            and not f.helpers_took
        ):
            findings.append(
                Finding(
                    "STM201",
                    cfg.file,
                    f.lines.get("get", info.line),
                    f"input connection '{info.var}' gets items but never "
                    "consumes: the channel's GC horizon cannot advance "
                    "(unbounded growth)",
                )
            )

        # STM205: no path from this attach reaches the exit detached.
        used = bool(
            {"get", "get_consume", "put", "consume", "consume_until"}
            & (f.direct | f.helper_kinds)
        )
        if exit_state is not None and site in exit_state.objs:
            exit_states = exit_state.objs[site]
            leaks = DETACHED not in exit_states and bool(exit_states & _ACTIVE)
        else:
            # the attach never reaches the exit (e.g. a ``while True``
            # service loop): leak unless *some* reachable path detaches
            leaks = not f.has_detach and "detach" not in f.helper_kinds
        if leaks and (used or f.lonely):
            findings.append(
                Finding(
                    "STM205",
                    cfg.file,
                    info.line,
                    f"connection '{info.var}' attached here is never "
                    "detached on any path to the end of "
                    f"'{cfg.qualname}'",
                )
            )
