"""The product abstract state threaded through the CFG by the engine.

One :class:`AbsState` carries both domains:

* typestate — ``conn`` (variable → attach-site references), ``objs``
  (attach site → powerset of base states), ``items`` (item variable →
  ``(site, fresh)`` bindings for use-after-consume tracking);
* virtual time — ``num`` (variable → :class:`~.domains.Val`), plus the
  per-site ``last_put`` / ``horizon`` / ``last_consume`` facts.

All values are immutable, so copies are shallow dict copies and equality
is structural.  ``join`` is the pointwise lattice join; missing keys mean
"unbound" for ``conn``/``items``, "never attached" for ``objs`` and ⊤ for
the numeric facts, which keeps every numeric claim a *must* fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .domains import (
    TsRec,
    UNATTACHED,
    Val,
    join_rec,
    join_val,
    widen_val,
)

__all__ = ["AbsState", "UNBOUND", "join"]

#: a reference that may not be a tracked connection at all
UNBOUND = "?"
_UNATT = frozenset({UNATTACHED})


@dataclass
class AbsState:
    conn: dict[str, frozenset[str]] = field(default_factory=dict)
    objs: dict[str, frozenset[str]] = field(default_factory=dict)
    items: dict[str, frozenset[tuple[str, bool]]] = field(default_factory=dict)
    num: dict[str, Val] = field(default_factory=dict)
    last_put: dict[str, TsRec] = field(default_factory=dict)
    horizon: dict[str, TsRec] = field(default_factory=dict)
    last_consume: dict[str, TsRec] = field(default_factory=dict)

    def copy(self) -> "AbsState":
        return AbsState(
            dict(self.conn),
            dict(self.objs),
            dict(self.items),
            dict(self.num),
            dict(self.last_put),
            dict(self.horizon),
            dict(self.last_consume),
        )

    # -- binding helpers -------------------------------------------------

    def kill(self, var: str) -> None:
        self.conn.pop(var, None)
        self.items.pop(var, None)
        self.num.pop(var, None)
        prefix = f"{var}."
        for key in [k for k in self.num if k.startswith(prefix)]:
            del self.num[key]

    def set_refs(self, var: str, refs: frozenset[str]) -> None:
        if refs and refs != frozenset({UNBOUND}):
            self.conn[var] = refs
        else:
            self.conn.pop(var, None)

    def invalidate_base(self, base: str, keep_num: str | None = None) -> None:
        """A symbolic base is being re-minted (its ``get`` re-executed):
        every fact still referring to the old incarnation is now stale."""
        for name, val in list(self.num.items()):
            if val.base == base and name != keep_num:
                del self.num[name]
        for table in (self.last_put, self.horizon, self.last_consume):
            for site, rec in list(table.items()):
                if rec.val.base == base:
                    del table[site]


def join(a: AbsState | None, b: AbsState | None, widen: bool = False) -> AbsState | None:
    """Pointwise join (⊥ joins transparently); ``widen`` relaxes unstable
    numeric bounds to ±∞ so loop-carried timestamps converge."""
    if a is None:
        return b.copy() if b is not None else None
    if b is None:
        return a.copy()
    out = AbsState()
    for var in a.conn.keys() | b.conn.keys():
        refs = a.conn.get(var, frozenset({UNBOUND})) | b.conn.get(
            var, frozenset({UNBOUND})
        )
        out.set_refs(var, refs)
    for site in a.objs.keys() | b.objs.keys():
        out.objs[site] = a.objs.get(site, _UNATT) | b.objs.get(site, _UNATT)
    for var in a.items.keys() | b.items.keys():
        binds = a.items.get(var, frozenset()) | b.items.get(var, frozenset())
        if binds:
            out.items[var] = binds
    joiner = widen_val if widen else join_val
    for var in a.num.keys() & b.num.keys():
        v = joiner(a.num[var], b.num[var])
        if v is not None:
            out.num[var] = v
    for site in a.last_put.keys() & b.last_put.keys():
        rec = join_rec(a.last_put[site], b.last_put[site], widen=widen)
        if rec is not None:
            out.last_put[site] = rec
    for site in a.horizon.keys() & b.horizon.keys():
        rec = join_rec(a.horizon[site], b.horizon[site], widen=widen)
        if rec is not None:
            out.horizon[site] = rec
    for site in a.last_consume.keys() & b.last_consume.keys():
        if a.last_consume[site] == b.last_consume[site]:
            out.last_consume[site] = a.last_consume[site]
    return out
