"""The one ``Finding`` model every analysis pass reports through.

A finding is a (rule id, severity, location, message) tuple with a stable
string form used both for terminal output and for baseline matching::

    STM201 warning src/foo.py:12 input connection 'inp' is gotten from but ...

Rule ids are permanent: checkers may sharpen what a rule matches, but an id
is never reused for a different class of defect.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is; both levels fail the CLI unless baselined."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Rule:
    """A catalog entry: stable id, default severity, one-line contract."""

    rule_id: str
    title: str
    severity: Severity
    description: str


#: The rule catalog.  STM1xx = lock discipline (static), STM2xx = STM
#: protocol (static), STM3xx = dynamic sanitizer findings, STM4xx =
#: model-checker findings (schedule exploration), STM5xx = whole-program
#: channel-graph findings (interprocedural static), STM6xx = abstract
#: interpretation findings (path-sensitive typestate + symbolic virtual
#: time).
RULES: dict[str, Rule] = {
    r.rule_id: r
    for r in [
        Rule(
            "STM101",
            "with-less lock acquisition",
            Severity.ERROR,
            "A runtime lock is acquired via .acquire() instead of a 'with' "
            "block; an exception between acquire and release leaks the lock.",
        ),
        Rule(
            "STM102",
            "inconsistent static lock order",
            Severity.ERROR,
            "Nested 'with' lock acquisitions form a cycle across the scanned "
            "modules (lock A taken under B somewhere, B under A elsewhere): "
            "a potential deadlock.",
        ),
        Rule(
            "STM103",
            "blocking call under a channel lock",
            Severity.WARNING,
            "A blocking call (Event.wait, sleep, join, recv, RPC call/gather) "
            "is made while a channel-style lock is held, stalling every "
            "thread that touches the channel.",
        ),
        Rule(
            "STM201",
            "get without consume",
            Severity.WARNING,
            "An input connection is gotten from but never consumes anything "
            "in the same function: unconsumed items pin the GC horizon "
            "(space leak) until the connection detaches.",
        ),
        Rule(
            "STM202",
            "use of a gotten item after consume",
            Severity.WARNING,
            "An item obtained from get() is used after consume()/"
            "consume_until() may have released it; under the REFERENCE copy "
            "policy the buffer can be reclaimed out from under the reader.",
        ),
        Rule(
            "STM203",
            "operation on a detached connection",
            Severity.ERROR,
            "A connection is used (put, get, consume, ...) after every "
            "path to the operation has already detached it; the call "
            "raises at runtime.",
        ),
        Rule(
            "STM204",
            "non-monotonic explicit timestamps",
            Severity.WARNING,
            "Literal timestamps on consecutive puts to the same output "
            "connection decrease; earlier items may already be consumed or "
            "garbage-collected, making the put a silent no-op or an error.",
        ),
        Rule(
            "STM205",
            "attach without detach",
            Severity.WARNING,
            "A connection from attach_input()/attach_output() never detaches "
            "and never escapes the function; its per-connection state pins "
            "the channel's GC minimum for the life of the thread.",
        ),
        Rule(
            "STM301",
            "dynamic lock-order cycle",
            Severity.ERROR,
            "At runtime, two lock classes were acquired in both orders by "
            "different threads (A held while taking B, and B held while "
            "taking A): a potential deadlock.",
        ),
        Rule(
            "STM302",
            "channel-state mutation without the owning lock",
            Severity.ERROR,
            "A ChannelKernel mutating method ran on a thread that does not "
            "hold the channel's lock.",
        ),
        Rule(
            "STM303",
            "use after reclaim",
            Severity.ERROR,
            "A payload (or zero-copy memoryview) belonging to a consumed or "
            "collected item was touched after the kernel reclaimed it.",
        ),
        Rule(
            "STM304",
            "data race on shared runtime state",
            Severity.ERROR,
            "Vector clocks prove a read and a write of the same shared "
            "variable are unordered by any lock (no happens-before edge "
            "between the accessing threads): a data race.",
        ),
        Rule(
            "STM305",
            "unordered kernel mutation",
            Severity.ERROR,
            "Two ChannelKernel mutations of the same kernel instance are "
            "unordered by happens-before (e.g. each thread used a different "
            "lock): the kernel's sequential state machine is being driven "
            "concurrently.",
        ),
        Rule(
            "STM401",
            "invariant violation under some schedule",
            Severity.ERROR,
            "The model checker found a thread interleaving under which a "
            "scenario invariant does not hold; the finding carries a "
            "deterministically replayable schedule seed.",
        ),
        Rule(
            "STM402",
            "deadlock under some schedule",
            Severity.ERROR,
            "The model checker found a thread interleaving that deadlocks "
            "(no thread enabled, some unfinished); the finding carries a "
            "replayable schedule seed.",
        ),
        Rule(
            "STM403",
            "unexpected exception under some schedule",
            Severity.ERROR,
            "A scenario thread raised an unexpected exception under some "
            "interleaving (e.g. an operation failed that sequentially "
            "succeeds); the finding carries a replayable schedule seed.",
        ),
        Rule(
            "STM501",
            "bounded-channel wait cycle",
            Severity.ERROR,
            "The whole-program channel graph contains a put->get wait cycle "
            "through a bounded channel: a thread's blocking put can fill the "
            "channel while its consumer is itself blocked getting an item "
            "only the putter (transitively) produces — a potential deadlock.",
        ),
        Rule(
            "STM502",
            "GC starvation: input connection never consumes or detaches",
            Severity.ERROR,
            "An input connection's interprocedural operation set (its own "
            "function plus every helper it is passed to) contains no "
            "consume, consume_until, or detach on any path: the connection "
            "pins the channel's GC horizon forever, an unbounded space leak "
            "the intra-procedural linter cannot see across the call.",
        ),
        Rule(
            "STM503",
            "orphan producer: put-only channel with no reachable consumer",
            Severity.WARNING,
            "A named channel is put to somewhere in the program but no "
            "scanned code ever attaches an input connection to it: every "
            "item survives until the producer detaches, and the data goes "
            "nowhere.",
        ),
        Rule(
            "STM504",
            "cross-procedure timestamp regression",
            Severity.WARNING,
            "Literal timestamps flowing into the same output connection "
            "decrease across a helper-call boundary (a direct put and a "
            "helper putting its timestamp parameter, or two helper calls): "
            "the later put targets an older column that may already be "
            "consumed or collected.",
        ),
        Rule(
            "STM505",
            "blocking STM call while holding a runtime lock",
            Severity.WARNING,
            "A potentially blocking STM operation (blocking get, put, or a "
            "wait=True lookup) runs — directly or through a callee — while "
            "a runtime lock is held; on the asyncio runtime this parks the "
            "event loop and on threads it stalls every peer of the lock.",
        ),
        Rule(
            "STM506",
            "wall-clock sleep on an STM kernel path",
            Severity.WARNING,
            "A time.sleep runs in a function that performs STM channel "
            "operations (or in a helper such a function calls): on the "
            "asyncio runtime it parks the whole event loop — every task in "
            "the space — and on any runtime it couples virtual-time "
            "progress to the wall clock; wait on a channel, an event, or "
            "the driver's timeout parameters instead.",
        ),
        Rule(
            "STM601",
            "non-monotonic put timestamps along a path",
            Severity.WARNING,
            "The symbolic virtual-time domain proves that on some "
            "execution path a put's timestamp is strictly below an "
            "earlier put to the same output connection (computed values "
            "included, not just literals): the later put targets an older "
            "column that may already be consumed or collected.",
        ),
        Rule(
            "STM602",
            "get or consume below the advanced GC horizon",
            Severity.ERROR,
            "A get/consume targets a virtual time at or below a horizon "
            "this same connection already advanced past (consume_until / "
            "consume): the item is guaranteed reclaimed, so the call can "
            "only miss or raise.",
        ),
        Rule(
            "STM603",
            "unbounded channel growth",
            Severity.WARNING,
            "A channel has at least one producer putting items while no "
            "attached input connection anywhere in the program ever "
            "consumes, advances the horizon, or detaches: the per-item "
            "state is never reclaimed and the channel's storage grows "
            "without bound.",
        ),
        Rule(
            "STM604",
            "blocking sync STM call in async code",
            Severity.ERROR,
            "A blocking synchronous STM operation (blocking get or put, "
            "or a call into a helper that performs one) is reachable from "
            "an 'async def' without being awaited: it parks the event "
            "loop, stalling every task in the space.",
        ),
    ]
}


@dataclass
class Finding:
    """One defect at one location, reported by any pass."""

    rule_id: str
    file: str
    line: int
    message: str
    severity: Severity | None = None
    #: extra context (e.g. the acquiring stack for dynamic findings).
    detail: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.severity is None:
            rule = RULES.get(self.rule_id)
            self.severity = rule.severity if rule else Severity.ERROR

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def baseline_key(self) -> str:
        """Stable identity used by the baseline file."""
        return f"{self.rule_id}|{self.file}|{self.line}"

    def render(self) -> str:
        text = f"{self.rule_id} {self.severity} {self.location} {self.message}"
        if self.detail:
            text += "\n" + "\n".join(f"    {ln}" for ln in self.detail.splitlines())
        return text


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Deterministic report order: file, line, rule id."""
    return sorted(findings, key=lambda f: (f.file, f.line, f.rule_id))
