"""Legacy lexical STM protocol linter (rules STM201-205).

Checks the paper's §4.1 API contract on application code: every connection
obtained from ``attach_input()`` / ``attach_output()`` (or the C-style
``spd_attach_*`` wrappers) is tracked through the function that created it,
and its get/consume/put/detach events are ordered with a lightweight
control-flow approximation:

* events are ordered by lexical position within a common statement list;
* events in sibling branches of an ``if`` are unordered;
* an event inside a branch that ends in ``break``/``continue``/``return``/
  ``raise`` does not precede later sibling statements (control never falls
  through), which keeps the common sentinel idiom silent::

      if item.value is None:
          inp.consume_until(item.timestamp)
          break
      use(item.value)          # fine: the consume above cannot reach here

A connection that *escapes* the function (passed to a call, returned,
yielded, stored into a container or attribute, or referenced from a nested
function) is trusted — its obligations may be met elsewhere — and all rules
go silent for it.  Connections used as ``with`` contexts count as detached
(the context manager detaches on exit).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["check_protocol_legacy"]

_ATTACH_INPUT = {"attach_input", "spd_attach_input_channel"}
_ATTACH_OUTPUT = {"attach_output", "spd_attach_output_channel"}
_GET = {"get", "get_consume", "spd_channel_get_item"}
_CONSUME = {
    "consume",
    "consume_until",
    "get_consume",
    "spd_channel_consume_item",
    "spd_channel_consume_items_until",
}
_PUT = {"put", "spd_channel_put_item"}
_DETACH = {"detach", "spd_detach_channel"}
#: spd_* free functions take the connection as their first argument.
_SPD_FUNCS = (
    _ATTACH_INPUT | _ATTACH_OUTPUT | _GET | _CONSUME | _PUT | _DETACH
) - {"get", "get_consume", "consume", "consume_until", "put", "detach",
     "attach_input", "attach_output"}

# A "path" locates a statement as ((stmt_list, index), ...) from the scope
# body down to the statement itself; stmt lists are compared by identity.
_Path = tuple[tuple[int, int], ...]


@dataclass
class _Event:
    kind: str           # attach | get | consume | put | detach | escape | use | rebind
    var: str
    line: int
    path: _Path
    #: literal int timestamp for put events, else None
    ts_literal: int | None = None


@dataclass
class _Conn:
    var: str
    kind: str           # "input" | "output"
    line: int           # attach line


@dataclass
class _Scope:
    """One function (or the module body) being analyzed."""

    name: str
    conns: dict[str, _Conn] = field(default_factory=dict)
    #: item var -> source connection var (bound via ``item = conn.get(...)``)
    items: dict[str, str] = field(default_factory=dict)
    events: list[_Event] = field(default_factory=list)
    #: item-var use events: (item_var, line, path)
    item_uses: list[tuple[str, int, _Path]] = field(default_factory=list)
    #: item var -> binding event path (rebinds reset consumed state)
    item_binds: list[tuple[str, int, _Path]] = field(default_factory=list)


def _terminates(stmts: list[ast.stmt], from_index: int) -> bool:
    """True if control cannot fall past the end of ``stmts`` once the
    statement at ``from_index`` has run (a later sibling terminates)."""
    return any(
        isinstance(s, (ast.Break, ast.Continue, ast.Return, ast.Raise))
        for s in stmts[from_index:]
    )


class _ScopeWalker:
    """Collect events for one scope with path-tracked statement order."""

    def __init__(self, body: list[ast.stmt], name: str) -> None:
        self.scope = _Scope(name)
        self.nested: list[tuple[list[ast.stmt], str]] = []
        #: id(list) -> the actual statement list, for terminator checks
        self.lists: dict[int, list[ast.stmt]] = {}
        self._recognized: set[int] = set()  # id(Name node) already consumed
        self._walk_block(body, ())

    # -- ordering ---------------------------------------------------------

    def strictly_precedes(self, a: _Path, b: _Path) -> bool:
        i = 0
        while i < len(a) and i < len(b) and a[i] == b[i]:
            i += 1
        if i == len(a) or i == len(b):
            return False  # same statement, or one nests inside the other
        (a_list, a_idx), (b_list, b_idx) = a[i], b[i]
        if a_list != b_list or a_idx >= b_idx:
            return False  # different branches, or b comes first
        # does control fall through from a's branch to the common list?
        for list_id, idx in a[i + 1:]:
            if _terminates(self.lists[list_id], idx):
                return False
        return True

    # -- event extraction -------------------------------------------------

    def _walk_block(self, stmts: list[ast.stmt], prefix: _Path) -> None:
        self.lists[id(stmts)] = stmts
        for idx, stmt in enumerate(stmts):
            path = prefix + ((id(stmts), idx),)
            self._walk_stmt(stmt, path)

    def _walk_stmt(self, stmt: ast.stmt, path: _Path) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested.append((stmt.body, stmt.name))
            self._note_escapes_in(stmt, path)
            return
        if isinstance(stmt, ast.ClassDef):
            self._note_escapes_in(stmt, path)
            return
        if isinstance(stmt, ast.Assign):
            self._handle_assign(stmt.targets, stmt.value, path)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._handle_assign([stmt.target], stmt.value, path)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ctx = item.context_expr
                if isinstance(ctx, ast.Name):
                    self._event("detach", ctx.id, ctx.lineno, path)
                    self._recognized.add(id(ctx))
                    continue
                # ``[async] with attach_input(...) as conn:`` — the context
                # manager detaches on exit, so the connection is attached
                # *and* detached right here.  Events inside the body nest
                # under this path and therefore never count as after the
                # detach; later sibling statements do (STM203 still works).
                kind = self._attach_kind(self._unwrap(ctx))
                if kind is not None and isinstance(item.optional_vars, ast.Name):
                    var = item.optional_vars.id
                    self.scope.conns[var] = _Conn(var, kind, ctx.lineno)
                    self._event("attach", var, ctx.lineno, path)
                    self._event("detach", var, ctx.lineno, path)
        # expression-level events within this statement
        for node in self._iter_exprs(stmt):
            if isinstance(node, ast.Call):
                self._handle_call(node, path)
        # leftover Name loads = escapes (conns) or uses (items)
        for node in self._iter_exprs(stmt):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in self._recognized
            ):
                self._event("escape", node.id, node.lineno, path)
                self.scope.item_uses.append((node.id, node.lineno, path))
        # child blocks
        for block in self._child_blocks(stmt):
            self._walk_block(block, path)

    def _child_blocks(self, stmt: ast.stmt) -> list[list[ast.stmt]]:
        blocks: list[list[ast.stmt]] = []
        for name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, name, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                blocks.append(block)
        for handler in getattr(stmt, "handlers", []):
            blocks.append(handler.body)
        return blocks

    def _iter_exprs(self, stmt: ast.stmt):
        """Walk this statement's expressions, skipping nested statements
        (child blocks are walked separately) and nested function bodies."""
        todo: list[ast.AST] = []
        for fname, value in ast.iter_fields(stmt):
            if fname in ("body", "orelse", "finalbody", "handlers"):
                continue
            if isinstance(value, ast.AST):
                todo.append(value)
            elif isinstance(value, list):
                todo.extend(v for v in value if isinstance(v, ast.AST))
        while todo:
            node = todo.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                        yield sub
                continue
            yield node
            todo.extend(ast.iter_child_nodes(node))

    def _note_escapes_in(self, node: ast.AST, path: _Path) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                self._event("escape", sub.id, sub.lineno, path)
                self.scope.item_uses.append((sub.id, sub.lineno, path))

    def _event(self, kind: str, var: str, line: int, path: _Path,
               ts: int | None = None) -> None:
        self.scope.events.append(_Event(kind, var, line, path, ts))

    def _unwrap(self, value: ast.expr) -> ast.expr:
        while isinstance(value, (ast.Await, ast.YieldFrom)):
            value = value.value
        return value

    def _handle_assign(self, targets: list[ast.expr], value: ast.expr,
                       path: _Path) -> None:
        value = self._unwrap(value)
        pairs: list[tuple[ast.expr, ast.expr]] = []
        for target in targets:
            if (
                isinstance(target, ast.Tuple)
                and isinstance(value, ast.Tuple)
                and len(target.elts) == len(value.elts)
            ):
                pairs.extend(zip(target.elts, value.elts, strict=True))
            else:
                pairs.append((target, value))
        for target, val in pairs:
            if not isinstance(target, ast.Name):
                continue
            val = self._unwrap(val)
            kind = self._attach_kind(val)
            if kind is not None:
                self.scope.conns[target.id] = _Conn(target.id, kind, target.lineno)
                self._event("attach", target.id, target.lineno, path)
                continue
            recv = self._protocol_receiver(val, _GET)
            if recv is not None:
                self.scope.items[target.id] = recv
                self.scope.item_binds.append((target.id, target.lineno, path))
            elif target.id in self.scope.conns or target.id in self.scope.items:
                # rebound to something unrelated: stop tracking cleanly
                self._event("rebind", target.id, target.lineno, path)

    def _attach_kind(self, value: ast.expr) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name in _ATTACH_INPUT:
            return "input"
        if name in _ATTACH_OUTPUT:
            return "output"
        return None

    def _protocol_receiver(self, value: ast.expr, methods: set[str]) -> str | None:
        """``conn.get(...)`` or ``spd_channel_get_item(conn, ...)`` → 'conn'."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in methods
            and isinstance(func.value, ast.Name)
        ):
            return func.value.id
        if (
            isinstance(func, ast.Name)
            and func.id in methods
            and value.args
            and isinstance(value.args[0], ast.Name)
        ):
            return value.args[0].id
        return None

    def _handle_call(self, node: ast.Call, path: _Path) -> None:
        func = node.func
        # conn.method(...) form
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            var, meth = func.value.id, func.attr
            matched = False
            if meth in _GET:
                self._event("get", var, node.lineno, path)
                matched = True
            if meth in _CONSUME:
                self._event("consume", var, node.lineno, path)
                matched = True
            if meth in _PUT:
                ts = None
                if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
                    node.args[0].value, int
                ):
                    ts = node.args[0].value
                self._event("put", var, node.lineno, path, ts)
                matched = True
            if meth in _DETACH:
                self._event("detach", var, node.lineno, path)
                matched = True
            if matched:
                self._recognized.add(id(func.value))
            return
        # spd_xxx(conn, ...) free-function form
        if isinstance(func, ast.Name) and func.id in _SPD_FUNCS and node.args:
            first = node.args[0]
            if isinstance(first, ast.Name):
                kinds: list[tuple[str, int | None]] = []
                if func.id in _GET:
                    kinds.append(("get", None))
                if func.id in _CONSUME:
                    kinds.append(("consume", None))
                if func.id in _PUT:
                    ts = None
                    if len(node.args) > 1 and isinstance(
                        node.args[1], ast.Constant
                    ) and isinstance(node.args[1].value, int):
                        ts = node.args[1].value
                    kinds.append(("put", ts))
                if func.id in _DETACH:
                    kinds.append(("detach", None))
                for kind, ts in kinds:
                    self._event(kind, first.id, first.lineno, path, ts)
                if kinds:
                    self._recognized.add(id(first))


def _check_scope(walker: _ScopeWalker, src: SourceFile) -> list[Finding]:
    scope = walker.scope
    findings: list[Finding] = []
    by_var: dict[str, list[_Event]] = {}
    for ev in scope.events:
        by_var.setdefault(ev.var, []).append(ev)

    for var, conn in scope.conns.items():
        events = by_var.get(var, [])
        if any(e.kind == "escape" for e in events):
            continue
        gets = [e for e in events if e.kind == "get"]
        consumes = [e for e in events if e.kind == "consume"]
        puts = [e for e in events if e.kind == "put"]
        detaches = [e for e in events if e.kind == "detach"]

        # STM201: gotten from, never consumes
        if conn.kind == "input" and gets and not consumes:
            findings.append(
                Finding(
                    "STM201",
                    src.display,
                    gets[0].line,
                    f"input connection '{var}' is gotten from but never "
                    "consumes; unconsumed items pin the GC horizon",
                )
            )

        # STM203: put after detach
        for put in puts:
            if any(walker.strictly_precedes(d.path, put.path) for d in detaches):
                findings.append(
                    Finding(
                        "STM203",
                        src.display,
                        put.line,
                        f"put on output connection '{var}' after it was "
                        "detached",
                    )
                )
                break

        # STM204: literal timestamps decreasing along a straight-line path
        literal_puts = [e for e in puts if e.ts_literal is not None]
        for i, earlier in enumerate(literal_puts):
            for later in literal_puts[i + 1:]:
                if (
                    walker.strictly_precedes(earlier.path, later.path)
                    and later.ts_literal < earlier.ts_literal
                ):
                    findings.append(
                        Finding(
                            "STM204",
                            src.display,
                            later.line,
                            f"timestamp {later.ts_literal} on '{var}.put' is "
                            f"older than the earlier put at line "
                            f"{earlier.line} (timestamp {earlier.ts_literal})",
                        )
                    )
                    break
            else:
                continue
            break

        # STM205: attached, never detached (and not a 'with' context)
        if not detaches and (gets or puts or consumes or len(events) == 1):
            findings.append(
                Finding(
                    "STM205",
                    src.display,
                    conn.line,
                    f"connection '{var}' from attach_{conn.kind} is never "
                    "detached; its claims pin the channel's GC minimum "
                    "until the thread exits",
                )
            )

    # STM202: item used after a consume on its source connection
    for item_var, conn_var in scope.items.items():
        if conn_var not in scope.conns:
            continue  # connection not tracked here (param/escaped source)
        conn_events = by_var.get(conn_var, [])
        if any(e.kind == "escape" for e in conn_events):
            continue
        consumes = [e for e in conn_events if e.kind == "consume"]
        binds = [(ln, p) for v, ln, p in scope.item_binds if v == item_var]
        for use_var, use_line, use_path in scope.item_uses:
            if use_var != item_var:
                continue
            for consume in consumes:
                # a consume at an item-binding statement is a get_consume:
                # the binding owns a copy, not a reclaimable reference
                if any(bind_path == consume.path for _ln, bind_path in binds):
                    continue
                if not walker.strictly_precedes(consume.path, use_path):
                    continue
                # a re-bind between the consume and the use resets the item
                rebound = any(
                    walker.strictly_precedes(consume.path, bind_path)
                    and walker.strictly_precedes(bind_path, use_path)
                    for _ln, bind_path in binds
                )
                if rebound:
                    continue
                findings.append(
                    Finding(
                        "STM202",
                        src.display,
                        use_line,
                        f"item '{item_var}' from '{conn_var}.get' used after "
                        f"'{conn_var}' consumed at line {consume.line}; under "
                        "the REFERENCE copy policy the buffer may already be "
                        "reclaimed",
                    )
                )
                break
            else:
                continue
            break
    return findings


def check_protocol_legacy(sources: list[SourceFile]) -> list[Finding]:
    """Run STM201-205 over the parsed sources (lexical approximation).

    The CLI's ``protolint`` pass now routes through the CFG-based
    :func:`repro.analysis.absint.check_protocol`; this walker is kept as
    the differential oracle the abstract interpreter must dominate
    (every true detection here is reproduced there, minus the
    false-positive classes the CFG understands).
    """
    findings: list[Finding] = []
    for src in sources:
        # module body plus every (nested) function, each as its own scope
        queue: list[tuple[list[ast.stmt], str]] = [(src.tree.body, "<module>")]
        while queue:
            body, name = queue.pop()
            walker = _ScopeWalker(body, name)
            queue.extend(walker.nested)
            findings.extend(_check_scope(walker, src))
    return findings
