"""Shared source-file plumbing for the static passes.

Handles file discovery, parsing, display-relative paths, and inline
suppressions.  A finding is suppressed by a comment on its line (or on the
opening line of the ``with``/call that produced it)::

    with self._lock:  # stm-ok: STM103 -- serializes whole GC rounds by design
        self.coordinator.gather(calls)

``# stm-ok`` with no rule list waives every rule on that line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["SourceFile", "load_sources", "iter_python_files", "filter_suppressed"]

_SUPPRESS_RE = re.compile(r"#\s*stm-ok\b:?\s*([A-Z0-9, ]*)")


@dataclass
class SourceFile:
    """One parsed module plus its suppression map."""

    path: Path          # real filesystem path
    display: str        # path as reported in findings (relative when possible)
    text: str
    tree: ast.Module
    #: line -> set of suppressed rule ids ("*" = all rules on that line)
    suppressions: dict[int, set[str]] = field(default_factory=dict)


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for p in paths:
        path = Path(p)
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.suffix == ".py" and path.exists():
            out.add(path)
    return sorted(out)


def _parse_suppressions(text: str) -> dict[int, set[str]]:
    supp: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        supp[lineno] = rules or {"*"}
    return supp


def load_sources(paths: list[str | Path], root: Path | None = None) -> list[SourceFile]:
    """Parse every python file under ``paths``; syntax errors are skipped
    (the repo's own lint gate owns those)."""
    root = root or Path.cwd()
    sources: list[SourceFile] = []
    for path in iter_python_files(paths):
        try:
            text = path.read_text()
            tree = ast.parse(text, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError):
            continue
        try:
            display = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            display = str(path)
        sources.append(
            SourceFile(
                path=path,
                display=display,
                text=text,
                tree=tree,
                suppressions=_parse_suppressions(text),
            )
        )
    return sources


def filter_suppressed(
    findings: list[Finding], sources: list[SourceFile]
) -> list[Finding]:
    """Drop findings waived by an inline ``# stm-ok`` comment."""
    by_display = {s.display: s for s in sources}
    kept: list[Finding] = []
    for f in findings:
        src = by_display.get(f.file)
        if src is not None:
            rules = src.suppressions.get(f.line)
            if rules is not None and ("*" in rules or f.rule_id in rules):
                continue
        kept.append(f)
    return kept
