"""Command-line harness for the analysis tooling.

Subcommands::

    python -m repro.analysis [static] ...         # static passes (default)
    python -m repro.analysis modelcheck           # schedule exploration
    python -m repro.analysis replay SEED          # replay one schedule seed
    python -m repro.analysis racecheck            # vector-clock race stress

Static-pass usage (with or without the explicit ``static`` word —
bare paths keep working for compatibility)::

    python -m repro.analysis                      # scan src/ + examples/
    python -m repro.analysis src tests/analysis   # explicit paths
    python -m repro.analysis --list-rules         # the rule catalog
    python -m repro.analysis --only protolint     # one pass
    python -m repro.analysis --baseline stm-baseline.txt
    python -m repro.analysis --write-baseline     # grandfather current findings

Exit status (every subcommand): 0 when clean (or every finding is
baselined), 1 when findings remain, 2 on usage or internal errors.  This
is the scriptable twin of the ``analysis`` and ``modelcheck`` CI jobs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable

from repro.analysis import baseline as baseline_mod
from repro.analysis.findings import Finding, RULES, sort_findings
from repro.analysis.lockcheck import check_lock_discipline
from repro.analysis.protolint import check_protocol
from repro.analysis.source import SourceFile, filter_suppressed, load_sources

__all__ = ["PASSES", "run_static_passes", "main"]

#: pass id -> (description, callable(sources) -> findings); the registration
#: idiom mirrors repro.bench.cli's EXPERIMENTS table.
PASSES: dict[str, tuple[str, Callable[[list[SourceFile]], list[Finding]]]] = {
    "lockcheck": (
        "lock discipline: with-less acquire, lock-order cycles, "
        "blocking calls under locks (STM101-103)",
        check_lock_discipline,
    ),
    "protolint": (
        "STM protocol: get/consume pairing, use-after-consume, "
        "put-after-detach, timestamp monotonicity, attach/detach (STM201-205)",
        check_protocol,
    ),
}

_DEFAULT_PATHS = ["src", "examples"]
_DEFAULT_BASELINE = "stm-baseline.txt"


def run_static_passes(
    paths: list[str] | None = None,
    only: list[str] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Run the selected passes; returns suppression-filtered findings."""
    ids = only or list(PASSES)
    unknown = [i for i in ids if i not in PASSES]
    if unknown:
        raise SystemExit(
            f"unknown pass id(s) {unknown}; choose from {sorted(PASSES)}"
        )
    sources = load_sources(list(paths or _DEFAULT_PATHS), root=root)
    findings: list[Finding] = []
    for pass_id in ids:
        _desc, fn = PASSES[pass_id]
        findings.extend(fn(sources))
    return sort_findings(filter_suppressed(findings, sources))


def _finding_json(finding: Finding, baselined: bool = False) -> dict:
    return {
        "rule": finding.rule_id,
        "severity": finding.severity.value,
        "file": finding.file,
        "line": finding.line,
        "message": finding.message,
        "baselined": baselined,
    }


def _main_modelcheck(argv: list[str]) -> int:
    from repro.analysis.modelcheck import SCENARIOS, explore

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis modelcheck",
        description="Explore thread interleavings of the bundled STM "
        "scenarios with the deterministic scheduler.",
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        metavar="NAME",
        help=f"scenarios to check (default: all of {sorted(SCENARIOS)})",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="override each scenario's schedule budget",
    )
    parser.add_argument("--format", choices=["text", "json"], default="text")
    args = parser.parse_args(argv)

    names = args.scenarios or sorted(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        parser.error(f"unknown scenario(s) {unknown}; choose from {sorted(SCENARIOS)}")

    rows = []
    failed = False
    for name in names:
        scenario = SCENARIOS[name]
        result = explore(scenario, budget=args.budget or scenario.budget)
        # A seeded scenario is healthy exactly when it *does* violate; a
        # clean scenario is healthy exactly when it does not.
        ok = result.clean == (not scenario.expect_violation)
        failed = failed or not ok
        rows.append((scenario, result, ok))

    if args.format == "json":
        print(
            json.dumps(
                [
                    {
                        "scenario": s.name,
                        "expect_violation": s.expect_violation,
                        "runs": r.runs,
                        "exhausted": r.exhausted,
                        "ok": ok,
                        "finding": None
                        if r.finding is None
                        else _finding_json(r.finding),
                    }
                    for s, r, ok in rows
                ],
                indent=2,
            )
        )
    else:
        for scenario, result, ok in rows:
            if result.finding is None:
                state = "exhausted" if result.exhausted else "budget reached"
                verdict = "clean" if ok else "MISSED SEEDED VIOLATION"
            else:
                state = "violation"
                verdict = "expected" if ok else "UNEXPECTED"
            print(
                f"{scenario.name:28s} {result.runs:5d} run(s)  "
                f"{state} ({verdict})"
            )
            if result.finding is not None and not ok:
                print(result.finding.render())
        summary = f"{len(rows)} scenario(s), {sum(1 for *_, ok in rows if not ok)} failure(s)"
        print(summary, file=sys.stderr)
    return 1 if failed else 0


def _main_replay(argv: list[str]) -> int:
    from repro.analysis.modelcheck import SCENARIOS, replay
    from repro.analysis.modelcheck.explorer import decode_seed

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis replay",
        description="Deterministically re-run one recorded schedule seed.",
    )
    parser.add_argument(
        "seed", help='schedule seed, e.g. "seeded-lost-wakeup:0.0.0.1.1.1.1.0"'
    )
    parser.add_argument("--format", choices=["text", "json"], default="text")
    args = parser.parse_args(argv)

    name, schedule = decode_seed(args.seed)
    if name not in SCENARIOS:
        parser.error(f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}")
    finding = replay(SCENARIOS[name], schedule)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "seed": args.seed,
                    "reproduced": finding is not None,
                    "finding": None if finding is None else _finding_json(finding),
                },
                indent=2,
            )
        )
    elif finding is None:
        print(f"{args.seed}: no violation under this schedule")
    else:
        print(finding.render())
    return 1 if finding is not None else 0


def _main_racecheck(argv: list[str]) -> int:
    from repro.analysis import racecheck

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis racecheck",
        description="Run the bundled real-thread stress workload under the "
        "vector-clock race detector (and the runtime sanitizer).",
    )
    parser.add_argument(
        "--pairs", type=int, default=3, help="producer/consumer thread pairs"
    )
    parser.add_argument(
        "--items", type=int, default=150, help="items per producer"
    )
    parser.add_argument("--format", choices=["text", "json"], default="text")
    args = parser.parse_args(argv)

    found = sort_findings(
        racecheck.run_builtin_workload(pairs=args.pairs, items=args.items)
    )
    if args.format == "json":
        print(json.dumps([_finding_json(f) for f in found], indent=2))
    else:
        for finding in found:
            print(finding.render())
        print(f"{len(found)} finding(s)", file=sys.stderr)
    return 1 if found else 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    subcommands = {
        "modelcheck": _main_modelcheck,
        "replay": _main_replay,
        "racecheck": _main_racecheck,
    }
    try:
        if argv and argv[0] in subcommands:
            return subcommands[argv[0]](argv[1:])
        if argv and argv[0] == "static":
            argv = argv[1:]
        return _main_static(argv)
    except SystemExit:
        raise
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        raise
    except BrokenPipeError:
        raise
    except Exception as exc:  # noqa: BLE001 - the exit-code-2 contract
        print(f"internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


def _main_static(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static lock-discipline and STM-protocol analysis.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files/directories to scan (default: {' '.join(_DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        metavar="ID",
        help=f"pass ids to run (default: all of {sorted(PASSES)})",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file of grandfathered findings "
        f"(default: {_DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (json emits one object per finding)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.rule_id}  {rule.severity.value:7s} {rule.title}")
            print(f"        {rule.description}")
        return 0

    findings = run_static_passes(args.paths or None, args.only)

    baseline_path = args.baseline or _DEFAULT_BASELINE
    if args.write_baseline:
        baseline_mod.write_baseline(baseline_path, findings)
        print(f"[{len(findings)} finding(s) written to {baseline_path}]")
        return 0

    known = baseline_mod.load_baseline(baseline_path)
    new, old = baseline_mod.split_baselined(findings, known)

    if args.format == "json":
        print(json.dumps([_finding_json(f, f in old) for f in findings], indent=2))
    else:
        for f in new:
            print(f.render())
        summary = f"{len(new)} new finding(s)"
        if old:
            summary += f", {len(old)} baselined"
        print(summary, file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
