"""Command-line harness for the analysis tooling.

Subcommands::

    python -m repro.analysis [static] ...         # static passes (default)
    python -m repro.analysis absint               # abstract interpreter (STM2xx+STM6xx)
    python -m repro.analysis stmgraph             # whole-program channel graph
    python -m repro.analysis modelcheck           # schedule exploration
    python -m repro.analysis replay SEED          # replay one schedule seed
    python -m repro.analysis racecheck            # vector-clock race stress

Static-pass usage (with or without the explicit ``static`` word —
bare paths keep working for compatibility)::

    python -m repro.analysis                      # scan src/ + examples/
    python -m repro.analysis src tests/analysis   # explicit paths
    python -m repro.analysis --list-rules         # the rule catalog
    python -m repro.analysis --only protolint     # one pass
    python -m repro.analysis --baseline stm-baseline.txt
    python -m repro.analysis --write-baseline     # grandfather current findings
    python -m repro.analysis --prune-baseline     # drop stale baseline entries
    python -m repro.analysis --format sarif       # SARIF 2.1.0 for code scanning

The channel-graph pass is whole-program (it needs every source at once),
so it is its own subcommand rather than a ``--only`` pass::

    python -m repro.analysis stmgraph src examples benchmarks
    python -m repro.analysis stmgraph --format dot | dot -Tsvg > graph.svg

Exit status (every subcommand): 0 when clean (or every finding is
baselined), 1 when findings remain, 2 on usage or internal errors.  This
is the scriptable twin of the ``analysis`` and ``modelcheck`` CI jobs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable

from repro.analysis import baseline as baseline_mod
from repro.analysis.findings import Finding, RULES, sort_findings
from repro.analysis.lockcheck import check_lock_discipline
from repro.analysis.absint import check_absint, check_protocol
from repro.analysis.sarif import sarif_report
from repro.analysis.source import SourceFile, filter_suppressed, load_sources

__all__ = ["PASSES", "run_static_passes", "main"]

#: which STM rule-id prefixes each pass family owns: stale-baseline
#: detection and pruning only touch entries the current invocation could
#: actually have re-confirmed.
_PASS_PREFIXES = {"lockcheck": ("STM1",), "protolint": ("STM2",)}
_STMGRAPH_PREFIXES = ("STM5",)
_ABSINT_PREFIXES = ("STM2", "STM6")

#: pass id -> (description, callable(sources) -> findings); the registration
#: idiom mirrors repro.bench.cli's EXPERIMENTS table.
PASSES: dict[str, tuple[str, Callable[[list[SourceFile]], list[Finding]]]] = {
    "lockcheck": (
        "lock discipline: with-less acquire, lock-order cycles, "
        "blocking calls under locks (STM101-103)",
        check_lock_discipline,
    ),
    "protolint": (
        "STM protocol via the CFG abstract interpreter: get/consume "
        "pairing, use-after-consume, use-after-detach, timestamp "
        "monotonicity, attach/detach (STM201-205)",
        check_protocol,
    ),
}

_DEFAULT_PATHS = ["src", "examples"]
_DEFAULT_BASELINE = "stm-baseline.txt"


def run_static_passes(
    paths: list[str] | None = None,
    only: list[str] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Run the selected passes; returns suppression-filtered findings."""
    ids = only or list(PASSES)
    unknown = [i for i in ids if i not in PASSES]
    if unknown:
        raise SystemExit(
            f"unknown pass id(s) {unknown}; choose from {sorted(PASSES)}"
        )
    sources = load_sources(list(paths or _DEFAULT_PATHS), root=root)
    findings: list[Finding] = []
    for pass_id in ids:
        _desc, fn = PASSES[pass_id]
        findings.extend(fn(sources))
    return sort_findings(filter_suppressed(findings, sources))


def _finding_json(finding: Finding, baselined: bool = False) -> dict:
    return {
        "rule": finding.rule_id,
        "severity": finding.severity.value,
        "file": finding.file,
        "line": finding.line,
        "message": finding.message,
        "baselined": baselined,
    }


def _apply_baseline(
    args: argparse.Namespace,
    findings: list[Finding],
    prefixes: tuple[str, ...],
) -> tuple[list[Finding], list[Finding], list[str]] | int:
    """Shared --write-baseline / --prune-baseline / stale-entry handling.

    Returns (new, baselined, stale-keys) — or an exit code when the
    invocation was a --write-baseline run.  Stale detection and pruning
    are scoped to ``prefixes`` so one pass family never disturbs another
    family's entries in the shared file.
    """
    baseline_path = args.baseline or _DEFAULT_BASELINE
    if args.write_baseline:
        keep = {
            k
            for k in baseline_mod.load_baseline(baseline_path)
            if not k.startswith(prefixes)
        }
        baseline_mod.write_baseline(baseline_path, findings, extra_keys=keep)
        print(f"[{len(findings)} finding(s) written to {baseline_path}]")
        return 0

    known = baseline_mod.load_baseline(baseline_path)
    stale = sorted(
        k
        for k in baseline_mod.stale_entries(known, findings)
        if k.startswith(prefixes)
    )
    if getattr(args, "prune_baseline", False) and stale:
        removed = baseline_mod.prune_baseline(baseline_path, set(stale))
        print(
            f"[pruned {len(removed)} stale baseline entry(ies) from "
            f"{baseline_path}]",
            file=sys.stderr,
        )
        known -= removed
        stale = []
    for key in stale:
        print(
            f"warning: stale baseline entry (no matching finding): {key}",
            file=sys.stderr,
        )
    new, old = baseline_mod.split_baselined(findings, known)
    return new, old, stale


def _main_modelcheck(argv: list[str]) -> int:
    from repro.analysis.modelcheck import SCENARIOS, explore

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis modelcheck",
        description="Explore thread interleavings of the bundled STM "
        "scenarios with the deterministic scheduler.",
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        metavar="NAME",
        help=f"scenarios to check (default: all of {sorted(SCENARIOS)})",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="override each scenario's schedule budget",
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text"
    )
    args = parser.parse_args(argv)

    names = args.scenarios or sorted(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        parser.error(f"unknown scenario(s) {unknown}; choose from {sorted(SCENARIOS)}")

    rows = []
    failed = False
    for name in names:
        scenario = SCENARIOS[name]
        result = explore(scenario, budget=args.budget or scenario.budget)
        # A seeded scenario is healthy exactly when it *does* violate; a
        # clean scenario is healthy exactly when it does not.
        ok = result.clean == (not scenario.expect_violation)
        failed = failed or not ok
        rows.append((scenario, result, ok))

    if args.format == "sarif":
        # unexpected findings are new results; expected seeded violations
        # ship suppressed (they are the corpus working as intended).
        unexpected = [r.finding for _s, r, ok in rows if not ok and r.finding]
        expected = [r.finding for _s, r, ok in rows if ok and r.finding]
        print(
            json.dumps(
                sarif_report(
                    unexpected, expected, tool_name="repro.analysis.modelcheck"
                ),
                indent=2,
            )
        )
    elif args.format == "json":
        print(
            json.dumps(
                [
                    {
                        "scenario": s.name,
                        "expect_violation": s.expect_violation,
                        "runs": r.runs,
                        "exhausted": r.exhausted,
                        "ok": ok,
                        "finding": None
                        if r.finding is None
                        else _finding_json(r.finding),
                    }
                    for s, r, ok in rows
                ],
                indent=2,
            )
        )
    else:
        for scenario, result, ok in rows:
            if result.finding is None:
                state = "exhausted" if result.exhausted else "budget reached"
                verdict = "clean" if ok else "MISSED SEEDED VIOLATION"
            else:
                state = "violation"
                verdict = "expected" if ok else "UNEXPECTED"
            print(
                f"{scenario.name:28s} {result.runs:5d} run(s)  "
                f"{state} ({verdict})"
            )
            if result.finding is not None and not ok:
                print(result.finding.render())
        summary = f"{len(rows)} scenario(s), {sum(1 for *_, ok in rows if not ok)} failure(s)"
        print(summary, file=sys.stderr)
    return 1 if failed else 0


def _main_replay(argv: list[str]) -> int:
    from repro.analysis.modelcheck import SCENARIOS, replay
    from repro.analysis.modelcheck.explorer import decode_seed

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis replay",
        description="Deterministically re-run one recorded schedule seed.",
    )
    parser.add_argument(
        "seed", help='schedule seed, e.g. "seeded-lost-wakeup:0.0.0.1.1.1.1.0"'
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text"
    )
    args = parser.parse_args(argv)

    name, schedule = decode_seed(args.seed)
    if name not in SCENARIOS:
        parser.error(f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}")
    finding = replay(SCENARIOS[name], schedule)

    if args.format == "sarif":
        print(
            json.dumps(
                sarif_report(
                    [finding] if finding is not None else [],
                    tool_name="repro.analysis.replay",
                ),
                indent=2,
            )
        )
    elif args.format == "json":
        print(
            json.dumps(
                {
                    "seed": args.seed,
                    "reproduced": finding is not None,
                    "finding": None if finding is None else _finding_json(finding),
                },
                indent=2,
            )
        )
    elif finding is None:
        print(f"{args.seed}: no violation under this schedule")
    else:
        print(finding.render())
    return 1 if finding is not None else 0


def _main_racecheck(argv: list[str]) -> int:
    from repro.analysis import racecheck

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis racecheck",
        description="Run the bundled real-thread stress workload under the "
        "vector-clock race detector (and the runtime sanitizer).",
    )
    parser.add_argument(
        "--pairs", type=int, default=3, help="producer/consumer thread pairs"
    )
    parser.add_argument(
        "--items", type=int, default=150, help="items per producer"
    )
    parser.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text"
    )
    args = parser.parse_args(argv)

    found = sort_findings(
        racecheck.run_builtin_workload(pairs=args.pairs, items=args.items)
    )
    if args.format == "sarif":
        print(
            json.dumps(
                sarif_report(found, tool_name="repro.analysis.racecheck"),
                indent=2,
            )
        )
    elif args.format == "json":
        print(json.dumps([_finding_json(f) for f in found], indent=2))
    else:
        for finding in found:
            print(finding.render())
        print(f"{len(found)} finding(s)", file=sys.stderr)
    return 1 if found else 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    subcommands = {
        "absint": _main_absint,
        "stmgraph": _main_stmgraph,
        "modelcheck": _main_modelcheck,
        "replay": _main_replay,
        "racecheck": _main_racecheck,
    }
    try:
        if argv and argv[0] in subcommands:
            return subcommands[argv[0]](argv[1:])
        if argv and argv[0] == "static":
            argv = argv[1:]
        return _main_static(argv)
    except SystemExit:
        raise
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        raise
    except BrokenPipeError:
        raise
    except Exception as exc:  # noqa: BLE001 - the exit-code-2 contract
        print(f"internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


def _main_static(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static lock-discipline and STM-protocol analysis.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files/directories to scan (default: {' '.join(_DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        metavar="ID",
        help=f"pass ids to run (default: all of {sorted(PASSES)})",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file of grandfathered findings "
        f"(default: {_DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite the baseline file dropping stale entries",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (json: one object per finding; sarif: 2.1.0)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.rule_id}  {rule.severity.value:7s} {rule.title}")
            print(f"        {rule.description}")
        return 0

    findings = run_static_passes(args.paths or None, args.only)

    prefixes = tuple(
        p
        for pass_id in (args.only or list(PASSES))
        for p in _PASS_PREFIXES.get(pass_id, ())
    )
    outcome = _apply_baseline(args, findings, prefixes)
    if isinstance(outcome, int):
        return outcome
    new, old, _stale = outcome

    if args.format == "sarif":
        print(json.dumps(sarif_report(new, old), indent=2))
    elif args.format == "json":
        print(json.dumps([_finding_json(f, f in old) for f in findings], indent=2))
    else:
        for f in new:
            print(f.render())
        summary = f"{len(new)} new finding(s)"
        if old:
            summary += f", {len(old)} baselined"
        print(summary, file=sys.stderr)
    return 1 if new else 0


def _main_absint(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis absint",
        description="Abstract interpretation of STM programs: CFG-based "
        "STM201-205 typestate plus the STM601-604 symbolic virtual-time "
        "rules.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files/directories to scan (default: {' '.join(_DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file (default: {_DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current STM2xx/STM6xx findings to the baseline and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite the baseline file dropping stale STM2xx/STM6xx entries",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (json: one object per finding; sarif: 2.1.0)",
    )
    args = parser.parse_args(argv)

    sources = load_sources(list(args.paths or _DEFAULT_PATHS))
    findings = sort_findings(filter_suppressed(check_absint(sources), sources))

    outcome = _apply_baseline(args, findings, _ABSINT_PREFIXES)
    if isinstance(outcome, int):
        return outcome
    new, old, _stale = outcome

    if args.format == "sarif":
        print(
            json.dumps(
                sarif_report(new, old, tool_name="repro.analysis.absint"),
                indent=2,
            )
        )
    elif args.format == "json":
        print(json.dumps([_finding_json(f, f in old) for f in findings], indent=2))
    else:
        for f in new:
            print(f.render())
        summary = f"{len(new)} new finding(s)"
        if old:
            summary += f", {len(old)} baselined"
        print(summary, file=sys.stderr)
    return 1 if new else 0


def _main_stmgraph(argv: list[str]) -> int:
    from repro.analysis.stmgraph import extract_graph

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis stmgraph",
        description="Extract the whole-program STM channel dataflow graph "
        "and check the STM501-506 graph-level rules.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files/directories to scan (default: {' '.join(_DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file (default: {_DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current STM5xx findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite the baseline file dropping stale STM5xx entries",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "dot", "sarif"],
        default="text",
        help="text: findings; json: graph + findings; dot: Graphviz "
        "topology (findings go to stderr); sarif: SARIF 2.1.0",
    )
    args = parser.parse_args(argv)

    sources = load_sources(list(args.paths or _DEFAULT_PATHS))
    graph = extract_graph(sources)
    findings = sort_findings(filter_suppressed(graph.findings, sources))

    outcome = _apply_baseline(args, findings, _STMGRAPH_PREFIXES)
    if isinstance(outcome, int):
        return outcome
    new, old, _stale = outcome

    if args.format == "dot":
        sys.stdout.write(graph.to_dot())
        for f in new:
            print(f.render(), file=sys.stderr)
    elif args.format == "json":
        doc = graph.to_json()
        doc["findings"] = [_finding_json(f, f in old) for f in findings]
        print(json.dumps(doc, indent=2))
    elif args.format == "sarif":
        print(
            json.dumps(
                sarif_report(new, old, tool_name="repro.analysis.stmgraph"),
                indent=2,
            )
        )
    else:
        for f in new:
            print(f.render())
        summary = (
            f"graph: {len(graph.threads)} thread(s), "
            f"{len(graph.channels)} channel(s), {len(graph.edges)} edge(s); "
            f"{len(new)} new finding(s)"
        )
        if old:
            summary += f", {len(old)} baselined"
        print(summary, file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
