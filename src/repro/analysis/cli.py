"""Command-line harness for the static analysis passes.

Usage::

    python -m repro.analysis                      # scan src/ + examples/
    python -m repro.analysis src tests/analysis   # explicit paths
    python -m repro.analysis --list-rules         # the rule catalog
    python -m repro.analysis --only protolint     # one pass
    python -m repro.analysis --baseline stm-baseline.txt
    python -m repro.analysis --write-baseline     # grandfather current findings

Exit status: 0 when every finding is baselined (or none exist), 1 when new
findings remain, 2 on usage errors.  This is the scriptable twin of the
``analysis`` CI job.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable

from repro.analysis import baseline as baseline_mod
from repro.analysis.findings import Finding, RULES, sort_findings
from repro.analysis.lockcheck import check_lock_discipline
from repro.analysis.protolint import check_protocol
from repro.analysis.source import SourceFile, filter_suppressed, load_sources

__all__ = ["PASSES", "run_static_passes", "main"]

#: pass id -> (description, callable(sources) -> findings); the registration
#: idiom mirrors repro.bench.cli's EXPERIMENTS table.
PASSES: dict[str, tuple[str, Callable[[list[SourceFile]], list[Finding]]]] = {
    "lockcheck": (
        "lock discipline: with-less acquire, lock-order cycles, "
        "blocking calls under locks (STM101-103)",
        check_lock_discipline,
    ),
    "protolint": (
        "STM protocol: get/consume pairing, use-after-consume, "
        "put-after-detach, timestamp monotonicity, attach/detach (STM201-205)",
        check_protocol,
    ),
}

_DEFAULT_PATHS = ["src", "examples"]
_DEFAULT_BASELINE = "stm-baseline.txt"


def run_static_passes(
    paths: list[str] | None = None,
    only: list[str] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Run the selected passes; returns suppression-filtered findings."""
    ids = only or list(PASSES)
    unknown = [i for i in ids if i not in PASSES]
    if unknown:
        raise SystemExit(
            f"unknown pass id(s) {unknown}; choose from {sorted(PASSES)}"
        )
    sources = load_sources(list(paths or _DEFAULT_PATHS), root=root)
    findings: list[Finding] = []
    for pass_id in ids:
        _desc, fn = PASSES[pass_id]
        findings.extend(fn(sources))
    return sort_findings(filter_suppressed(findings, sources))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static lock-discipline and STM-protocol analysis.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files/directories to scan (default: {' '.join(_DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        metavar="ID",
        help=f"pass ids to run (default: all of {sorted(PASSES)})",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file of grandfathered findings "
        f"(default: {_DEFAULT_BASELINE} if it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (json emits one object per finding)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.rule_id}  {rule.severity.value:7s} {rule.title}")
            print(f"        {rule.description}")
        return 0

    findings = run_static_passes(args.paths or None, args.only)

    baseline_path = args.baseline or _DEFAULT_BASELINE
    if args.write_baseline:
        baseline_mod.write_baseline(baseline_path, findings)
        print(f"[{len(findings)} finding(s) written to {baseline_path}]")
        return 0

    known = baseline_mod.load_baseline(baseline_path)
    new, old = baseline_mod.split_baselined(findings, known)

    if args.format == "json":
        print(
            json.dumps(
                [
                    {
                        "rule": f.rule_id,
                        "severity": f.severity.value,
                        "file": f.file,
                        "line": f.line,
                        "message": f.message,
                        "baselined": f in old,
                    }
                    for f in findings
                ],
                indent=2,
            )
        )
    else:
        for f in new:
            print(f.render())
        summary = f"{len(new)} new finding(s)"
        if old:
            summary += f", {len(old)} baselined"
        print(summary, file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
