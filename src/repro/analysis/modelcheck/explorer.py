"""DFS schedule exploration with sleep-set partial-order reduction.

The explorer is *stateless* (Verisoft-style): it cannot snapshot Python
heap state, so every schedule is executed from scratch with a forced
choice prefix, and the search tree is reconstructed from the determinism
of the scenario.  A node of the tree is a scheduling step; it records the
enabled thread set, each enabled thread's pending-operation footprint, the
choices already explored, and its *sleep set*.

Sleep sets (Godefroid) are the partial-order reduction: after fully
exploring choice ``t`` at a node, ``t`` goes to sleep for the node's later
branches, and a sleeping thread is only woken in a subtree by an operation
*dependent* on its pending one.  Two operations are dependent iff they
target the same primitive (same lock, same event); reordering two steps on
disjoint primitives commutes, so schedules that differ only in such
reorderings are explored once.  The reduction is sound for safety
properties and deadlocks — every reachable state of the full tree is
reached by some explored schedule.

The schedule *budget* bounds the number of executions; hitting it means
the space was sampled exhaustively-up-to-budget, which the result reports
as ``exhausted=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.modelcheck.scheduler import (
    DeadlockError,
    InvariantViolation,
    Op,
    Scheduler,
)
from repro.analysis.modelcheck.scenarios import Scenario
from repro.runtime import sync

__all__ = ["ExplorationResult", "explore", "replay", "encode_seed", "decode_seed"]


def encode_seed(scenario_name: str, schedule: list[int]) -> str:
    """A replayable schedule seed: ``"<scenario>:<tid>.<tid>..."``."""
    return f"{scenario_name}:" + ".".join(map(str, schedule))


def decode_seed(seed: str) -> tuple[str, list[int]]:
    name, _, tail = seed.partition(":")
    schedule = [int(x) for x in tail.split(".") if x != ""]
    return name, schedule


@dataclass
class _Node:
    """One scheduling step of the current DFS path."""

    enabled: list[int]
    footprints: dict[int, int | None]
    sleep: set[int]
    tried: list[int] = field(default_factory=list)
    #: sleep set inherited by the child of the most recent choice.
    child_sleep: set[int] = field(default_factory=set)

    def candidates(self) -> list[int]:
        blocked = self.sleep.union(self.tried)
        return [t for t in self.enabled if t not in blocked]


@dataclass
class _RunOutcome:
    schedule: list[int]
    violation: Finding | None = None


@dataclass
class ExplorationResult:
    """What :func:`explore` found for one scenario."""

    scenario: str
    runs: int
    #: True when the (reduced) schedule tree was fully explored.
    exhausted: bool
    finding: Finding | None = None

    @property
    def clean(self) -> bool:
        return self.finding is None


def _independent(fp_a: int | None, fp_b: int | None) -> bool:
    """Operations commute iff they touch distinct primitives; unknown
    footprints (START ops) conservatively conflict with everything."""
    return fp_a is not None and fp_b is not None and fp_a != fp_b


def _execute(
    scenario: Scenario,
    prefix: list[int],
    stack: list[_Node] | None,
) -> _RunOutcome:
    """One schedule execution: force ``prefix``, then first-candidate DFS.

    ``stack`` is the DFS path being (re)built; nodes for steps < len(stack)
    already exist from the previous execution and are reused (determinism
    makes them identical).  Pass ``stack=None`` for pure replay.
    """
    sched = Scheduler()
    sync.install_factories(sched.make_lock, sched.make_event)
    ctx = None
    outcome = _RunOutcome(schedule=sched.trace)
    try:
        ctx = scenario.build()
        for name, fn in scenario.threads(ctx):
            sched.spawn(name, lambda fn=fn: fn(ctx))

        pruned = False

        def sticky(tids: list[int]) -> int:
            """Prefer continuing the thread that just ran: DFS then explores
            schedules in roughly increasing context-switch count, which
            reaches real racy interleavings orders of magnitude sooner than
            round-robin order."""
            if sched.trace and sched.trace[-1] in tids:
                return sched.trace[-1]
            return tids[0]

        def choose(enabled: list[tuple[int, Op]]) -> int:
            nonlocal pruned
            step = len(sched.trace)
            tids = [t for t, _ in enabled]
            fps = {t: op.footprint for t, op in enabled}
            if step < len(prefix):
                # Forced segment: the node (if tracked) already exists.
                chosen = prefix[step]
                if chosen not in fps:  # pragma: no cover - determinism guard
                    raise RuntimeError(
                        f"replay diverged at step {step}: thread {chosen} "
                        f"not enabled (enabled: {tids})"
                    )
                if stack is not None and step < len(stack):
                    node = stack[step]
                    node.child_sleep = {
                        u
                        for u in node.sleep.union(t for t in node.tried
                                                  if t != chosen)
                        if u in fps
                        and _independent(fps[u], fps[chosen])
                    }
                return chosen
            if stack is None or pruned:
                return sticky(tids)
            # Fresh node: inherit the parent's child_sleep, drop sleepers
            # that are no longer enabled (re-exploring them is redundant
            # but sound; keeping a disabled sleeper is not worth tracking).
            inherited = stack[step - 1].child_sleep if step > 0 else set()
            sleep = {u for u in inherited if u in fps}
            node = _Node(enabled=tids, footprints=fps, sleep=sleep)
            choices = node.candidates()
            if not choices:
                # Sleep-blocked: every continuation is covered by an
                # already-explored reordering.  Finish the run (the OS
                # threads must complete) without growing the tree.
                pruned = True
                return sticky(tids)
            chosen = sticky(choices)
            node.tried.append(chosen)
            node.child_sleep = {
                u for u in node.sleep if _independent(fps[u], fps[chosen])
            }
            stack.append(node)
            return chosen

        def after_step() -> None:
            scenario.step_invariant(ctx)

        sched.run(choose, after_step)
        scenario.final_invariant(ctx)
    except DeadlockError as exc:
        sched.abort()
        outcome.violation = _finding(
            scenario, "STM402", str(exc), sched.trace
        )
    except InvariantViolation as exc:
        sched.abort()
        outcome.violation = _finding(
            scenario, "STM401", str(exc), sched.trace
        )
    except Exception as exc:  # noqa: BLE001 - any scenario crash is a finding
        sched.abort()
        outcome.violation = _finding(
            scenario,
            "STM403",
            f"{type(exc).__name__}: {exc}",
            sched.trace,
        )
    finally:
        try:
            if ctx is not None:
                scenario.teardown(ctx)
        finally:
            sync.clear_factories()
        sched.join_all()
    return outcome


def _finding(
    scenario: Scenario, rule_id: str, message: str, schedule: list[int]
) -> Finding:
    seed = encode_seed(scenario.name, schedule)
    return Finding(
        rule_id,
        file=f"modelcheck/{scenario.name}",
        line=len(schedule),
        message=f"{message} [seed {seed}]",
        detail=f"replay: python -m repro.analysis replay {seed}",
    )


def explore(scenario: Scenario, budget: int = 500) -> ExplorationResult:
    """DFS the scenario's schedule space; stop at the first violation or
    after ``budget`` executions."""
    stack: list[_Node] = []
    prefix: list[int] = []
    runs = 0
    while runs < budget:
        outcome = _execute(scenario, prefix, stack)
        runs += 1
        if outcome.violation is not None:
            return ExplorationResult(
                scenario.name, runs, exhausted=False, finding=outcome.violation
            )
        # Backtrack: deepest node with an untried, non-sleeping choice.
        while stack:
            node = stack[-1]
            choices = node.candidates()
            if choices:
                chosen = choices[0]
                node.tried.append(chosen)
                prefix = [n.tried[-1] for n in stack[:-1]] + [chosen]
                break
            stack.pop()
        else:
            return ExplorationResult(scenario.name, runs, exhausted=True)
    return ExplorationResult(scenario.name, runs, exhausted=False)


def replay(scenario: Scenario, schedule: list[int]) -> Finding | None:
    """Re-run one schedule; returns the violation it reproduces (or None)."""
    outcome = _execute(scenario, schedule, stack=None)
    return outcome.violation
