"""Schedule-exploring model checker for the STM kernel and runtime.

The checker runs small, real STM workloads — actual
:class:`~repro.runtime.cluster.Cluster` objects on the single-space
shared-memory path — under a *deterministic cooperative scheduler*.
Every lock acquire/release and event wait/set/clear the runtime performs
(via the :mod:`repro.runtime.sync` factories) becomes a scheduling point,
and the explorer enumerates the interleavings of those points with a DFS
over thread choices, pruned by a sleep-set partial-order reduction and
bounded by a schedule budget.

A schedule is a sequence of thread indices; when a run violates a scenario
invariant, raises unexpectedly, or deadlocks, the finding carries the
schedule as a replayable *seed* (``"1.0.0.2.1..."``) that deterministically
reproduces the failure — see :func:`replay`.

Public surface:

* :func:`explore` — exhaust one scenario's schedule space (up to a budget).
* :func:`replay` — re-run one scenario under a recorded schedule seed.
* :data:`SCENARIOS` — the bundled scenario suite (clean + seeded-bug).
* ``python -m repro.analysis modelcheck`` — the CLI entry point.
"""

from repro.analysis.modelcheck.explorer import (
    ExplorationResult,
    explore,
    replay,
)
from repro.analysis.modelcheck.scenarios import SCENARIOS, Scenario
from repro.analysis.modelcheck.scheduler import (
    DeadlockError,
    InvariantViolation,
    ModelEvent,
    ModelLock,
    Scheduler,
)

__all__ = [
    "DeadlockError",
    "ExplorationResult",
    "InvariantViolation",
    "ModelEvent",
    "ModelLock",
    "SCENARIOS",
    "Scenario",
    "Scheduler",
    "explore",
    "replay",
]
