"""Deterministic cooperative scheduler: the model checker's execution core.

Model threads are real OS threads gated by semaphores so that **exactly one
runs at a time**.  A thread runs until it reaches a *yield point* — a
:class:`ModelLock` acquire/release or a :class:`ModelEvent` wait/set/clear —
where it publishes the operation it is about to perform and parks.  The
controller (the thread driving :meth:`Scheduler.run`) then picks which
parked thread to resume among those whose pending operation is *enabled*
(lock free, event set, ...).  One transition = perform the pending
operation + run to the next yield point; code between yield points executes
atomically, which is exactly the granularity lock-based code is written
against.

The trace of choices (a list of thread ids) is the *schedule*.  Replaying a
schedule is forcing the same choices, which is deterministic because thread
ids are assigned in spawn order and everything between yield points is
sequential Python.

Blocked-state semantics:

* ``acquire`` is enabled iff the lock is free (model locks are
  non-reentrant, like ``threading.Lock``);
* ``wait`` is enabled iff the event is set — timeouts never fire in model
  time, so a wait that can only end by timeout counts as blocked and
  surfaces as a deadlock;
* ``release``/``set``/``clear`` are always enabled.

When no thread is enabled but some are unfinished, the run has deadlocked:
:meth:`Scheduler.run` raises :class:`DeadlockError` listing each blocked
thread's pending operation.

Primitives touched by *unregistered* OS threads (the controller while it
builds the scenario fixture, pytest's main thread, ...) bypass the
scheduler entirely: the model only interleaves registered threads.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

__all__ = [
    "DeadlockError",
    "InvariantViolation",
    "ModelEvent",
    "ModelLock",
    "Op",
    "Scheduler",
    "SchedulerAbort",
]


class InvariantViolation(AssertionError):
    """A scenario invariant does not hold in the current state."""


class DeadlockError(RuntimeError):
    """No thread is enabled but some are unfinished."""

    def __init__(self, message: str, blocked: list[str]):
        super().__init__(message)
        self.blocked = blocked


class SchedulerAbort(BaseException):
    """Raised inside a model thread to unwind it during forced teardown.

    Derives from BaseException so scenario code cannot swallow it with a
    broad ``except Exception``.
    """


class Op:
    """A pending operation at a yield point: ``kind`` + target primitive.

    The target's ``id()`` is the operation's *footprint*; two operations
    are independent (commute) iff their footprints differ.  ``START`` ops
    have no footprint and are treated as dependent with everything.
    """

    __slots__ = ("kind", "target")

    def __init__(self, kind: str, target: Any = None):
        self.kind = kind
        self.target = target

    @property
    def footprint(self) -> int | None:
        return None if self.target is None else id(self.target)

    def describe(self) -> str:
        if self.target is None:
            return self.kind
        name = getattr(self.target, "name", None) or type(self.target).__name__
        return f"{self.kind}({name})"


_START = "start"


class _ModelThread:
    __slots__ = (
        "tid", "name", "os_thread", "sem", "pending", "finished", "error",
        "aborting",
    )

    def __init__(self, tid: int, name: str):
        self.tid = tid
        self.name = name
        self.os_thread: threading.Thread | None = None
        self.sem = threading.Semaphore(0)
        self.pending: Op | None = Op(_START)
        self.finished = False
        self.error: BaseException | None = None
        self.aborting = False


class Scheduler:
    """One schedule execution: spawn model threads, then :meth:`run`."""

    def __init__(self) -> None:
        self._threads: list[_ModelThread] = []
        self._controller_sem = threading.Semaphore(0)
        self._tls = threading.local()
        self.trace: list[int] = []

    # -- primitive factories (installed via repro.runtime.sync) ----------
    def make_lock(self, name: str) -> "ModelLock":
        return ModelLock(self, name)

    def make_event(self) -> "ModelEvent":
        return ModelEvent(self)

    # -- thread management ------------------------------------------------
    def spawn(self, name: str, fn: Callable[[], None]) -> int:
        """Register a model thread; it parks immediately (pending START)."""
        mt = _ModelThread(len(self._threads), name)
        self._threads.append(mt)

        def body() -> None:
            self._tls.model_thread = mt
            mt.sem.acquire()  # wait to be scheduled for the first time
            try:
                if not mt.aborting:
                    fn()
            except SchedulerAbort:
                pass
            except BaseException as exc:  # noqa: BLE001 - surfaced by run()
                mt.error = exc
            finally:
                mt.pending = None
                mt.finished = True
                self._controller_sem.release()

        mt.os_thread = threading.Thread(
            target=body, name=f"model-{name}", daemon=True
        )
        mt.os_thread.start()
        return mt.tid

    def _current(self) -> _ModelThread | None:
        return getattr(self._tls, "model_thread", None)

    # -- the yield protocol (called from model threads) -------------------
    def _yield_op(self, op: Op) -> None:
        """Park at a yield point until the controller schedules this op."""
        mt = self._current()
        assert mt is not None
        mt.pending = op
        self._controller_sem.release()
        mt.sem.acquire()
        if mt.aborting:
            raise SchedulerAbort()
        mt.pending = None

    # -- enabledness -------------------------------------------------------
    @staticmethod
    def _enabled(op: Op) -> bool:
        if op.kind == "acquire":
            return not op.target._locked
        if op.kind == "wait":
            return op.target._flag
        return True  # start / release / set / clear

    def snapshot(self) -> list[tuple[int, Op]]:
        """(tid, pending op) of every enabled, unfinished thread —
        deterministic order (spawn order)."""
        out = []
        for mt in self._threads:
            if not mt.finished and mt.pending is not None and self._enabled(mt.pending):
                out.append((mt.tid, mt.pending))
        return out

    # -- the controller loop ----------------------------------------------
    def run(
        self,
        choose: Callable[[list[tuple[int, Op]]], int] | None = None,
        after_step: Callable[[], None] | None = None,
    ) -> list[int]:
        """Drive the model threads to completion.

        ``choose`` maps the enabled snapshot to a tid (default: first
        enabled).  ``after_step`` runs on the controller after every
        transition (scenario step-invariants).  Returns the schedule.
        Raises :class:`DeadlockError` on deadlock, or re-raises the first
        model-thread exception.
        """
        while True:
            unfinished = [mt for mt in self._threads if not mt.finished]
            if not unfinished:
                break
            enabled = self.snapshot()
            if not enabled:
                blocked = [
                    f"{mt.name}: {mt.pending.describe()}"
                    for mt in unfinished
                    if mt.pending is not None
                ]
                raise DeadlockError(
                    f"deadlock after {len(self.trace)} steps: "
                    + "; ".join(blocked),
                    blocked,
                )
            tid = choose(enabled) if choose is not None else enabled[0][0]
            self.trace.append(tid)
            self._step(tid)
            for mt in self._threads:
                if mt.error is not None:
                    raise mt.error
            if after_step is not None:
                after_step()
        return self.trace

    def _step(self, tid: int) -> None:
        """Resume one thread and wait until it parks again (or finishes)."""
        mt = self._threads[tid]
        mt.sem.release()
        self._controller_sem.acquire()

    def abort(self) -> None:
        """Force-unwind every unfinished model thread (teardown after a
        deadlock): each is resumed with the abort flag, raising
        :class:`SchedulerAbort` out of its current yield point."""
        for mt in self._threads:
            while not mt.finished:
                mt.aborting = True
                mt.sem.release()
                self._controller_sem.acquire()

    def join_all(self, timeout: float = 5.0) -> None:
        for mt in self._threads:
            if mt.os_thread is not None:
                mt.os_thread.join(timeout)


class ModelLock:
    """A cooperative, non-reentrant lock; acquire/release are yield points.

    Duck-types the slice of the ``threading.Lock``/
    :class:`~repro.analysis.sanitizer.SanLock` interface the runtime uses.
    State is plain fields — safe because only one model thread runs at a
    time, and unregistered threads only touch primitives while no model
    thread is running (fixture setup/teardown).
    """

    __slots__ = ("name", "_sched", "_locked", "_owner")

    def __init__(self, sched: Scheduler, name: str):
        self.name = name
        self._sched = sched
        self._locked = False
        self._owner: Any = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        mt = self._sched._current()
        if mt is not None:
            self._sched._yield_op(Op("acquire", self))
        elif self._locked:  # pragma: no cover - defensive
            raise RuntimeError(
                f"unregistered thread would block on model lock {self.name!r}"
            )
        self._locked = True
        self._owner = mt.tid if mt is not None else threading.get_ident()
        return True

    def release(self) -> None:
        mt = self._sched._current()
        if mt is not None:
            self._sched._yield_op(Op("release", self))
        self._locked = False
        self._owner = None

    def locked(self) -> bool:
        return self._locked

    def held_by_current(self) -> bool:
        mt = self._sched._current()
        me = mt.tid if mt is not None else threading.get_ident()
        return self._locked and self._owner == me

    def __enter__(self) -> "ModelLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "locked" if self._locked else "unlocked"
        return f"<ModelLock {self.name!r} {state}>"


class ModelEvent:
    """A cooperative event; wait/set/clear are yield points.

    ``wait`` blocks until the flag is set — model time has no clocks, so a
    timeout never fires (a wait that only a timeout could end is a
    deadlock, which is what the checker should report).
    """

    __slots__ = ("_sched", "_flag")

    def __init__(self, sched: Scheduler):
        self._sched = sched
        self._flag = False

    def wait(self, timeout: float | None = None) -> bool:
        mt = self._sched._current()
        if mt is not None:
            self._sched._yield_op(Op("wait", self))
            return True
        # Unregistered thread: behave like a real event (bounded spin).
        deadline = time.monotonic() + (timeout if timeout is not None else 5.0)
        while not self._flag:
            if time.monotonic() > deadline:
                return False
            time.sleep(0.001)
        return True

    def set(self) -> None:
        mt = self._sched._current()
        if mt is not None:
            self._sched._yield_op(Op("set", self))
        self._flag = True

    def clear(self) -> None:
        mt = self._sched._current()
        if mt is not None:
            self._sched._yield_op(Op("clear", self))
        self._flag = False

    def is_set(self) -> bool:
        return self._flag
