"""The bundled model-checking scenarios: clean suite + seeded bugs.

Each scenario is a tiny, real STM workload: the *clean* ones drive an
actual single-space :class:`~repro.runtime.cluster.Cluster` (no dispatcher
threads, no GC daemon — every operation runs inline on a model thread, so
the scheduler controls the complete thread set) and must hold their
invariants under **every** explored interleaving.  The *seeded* ones
(``expect_violation=True``) contain a deliberately broken synchronization
pattern — a check-then-act put, a GC that ignores thread visibilities, a
lost wakeup — and exist to prove the explorer finds such bugs and that
their schedule seeds replay deterministically.

Scenario fixtures are built on the controller thread (primitives touched
there bypass the scheduler); Stampede threads are registered directly so
their visibilities count toward GC from step zero, independent of when the
model schedules their bodies.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Callable

from repro.analysis.modelcheck.scheduler import InvariantViolation
from repro.core.channel_state import ChannelKernel, Status
from repro.core.time import INFINITY
from repro.runtime.cluster import Cluster
from repro.runtime.sync import make_event, make_lock
from repro.runtime.threads import StampedeThread

__all__ = ["Scenario", "SCENARIOS"]


class Scenario:
    """Base scenario: subclasses define build/threads/invariants."""

    name: str = ""
    description: str = ""
    expect_violation: bool = False
    #: default max schedule executions for :func:`~..explorer.explore`.
    budget: int = 250

    def build(self) -> SimpleNamespace:
        raise NotImplementedError

    def threads(
        self, ctx: SimpleNamespace
    ) -> list[tuple[str, Callable[[SimpleNamespace], None]]]:
        raise NotImplementedError

    def step_invariant(self, ctx: SimpleNamespace) -> None:
        """Checked on the controller after every transition."""

    def final_invariant(self, ctx: SimpleNamespace) -> None:
        """Checked once every thread has finished."""

    def teardown(self, ctx: SimpleNamespace) -> None:
        cluster = getattr(ctx, "cluster", None)
        if cluster is not None:
            cluster.shutdown()


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvariantViolation(message)


def _cluster_ctx(capacity: int | None = None) -> SimpleNamespace:
    """A single-space cluster fixture fully under scheduler control."""
    cluster = Cluster(n_spaces=1, gc_period=None, dispatchers=False)
    space = cluster.space(0)
    handle = space.create_channel(capacity=capacity)
    return SimpleNamespace(
        cluster=cluster, space=space, handle=handle, results=[]
    )


def _register_thread(ctx, name: str, virtual_time) -> StampedeThread:
    """Create + register a Stampede thread without binding any OS thread.

    Registration in build() (not in the body) means the thread's visibility
    feeds gc_summary from the first transition — matching a real program,
    where a thread exists before any schedule-dependent work it performs.
    """
    thread = StampedeThread(ctx.space, name, virtual_time)
    ctx.space._threads[name] = thread
    return thread


def _kernel(ctx) -> ChannelKernel:
    # Raw (lock-free) access for controller-side invariant checks: safe
    # because invariants run between transitions, when no model thread is
    # mid-critical-section *running* — state is frozen.
    return ctx.space._channels[ctx.handle.channel_id].kernel


# ---------------------------------------------------------------------------
# clean scenarios
# ---------------------------------------------------------------------------


class PutGetConsume(Scenario):
    """Concurrent put/get/consume on one channel.

    Producer puts two refcount-1 items; consumer (blocking) gets and
    consumes both.  Invariants: the consumer sees exactly the payloads in
    timestamp order, and both items are eagerly reclaimed (§6).
    """

    name = "put-get-consume"
    description = "concurrent put/get/consume on one channel"

    def build(self):
        ctx = _cluster_ctx()
        producer = _register_thread(ctx, "producer", 0)
        consumer = _register_thread(ctx, "consumer", 0)
        ctx.out = ctx.space.attach(ctx.handle, is_input=False, thread=producer)
        ctx.inp = ctx.space.attach(ctx.handle, is_input=True, thread=consumer)
        return ctx

    def threads(self, ctx):
        def producer(ctx):
            ctx.space.put(ctx.handle, ctx.out, 0, b"a", 1, refcount=1)
            ctx.space.put(ctx.handle, ctx.out, 1, b"b", 1, refcount=1)

        def consumer(ctx):
            for ts in (0, 1):
                payload, got_ts, _size = ctx.space.get(ctx.handle, ctx.inp, ts)
                ctx.results.append((got_ts, payload))
                ctx.space.consume(ctx.handle, ctx.inp, ts)

        return [("producer", producer), ("consumer", consumer)]

    def final_invariant(self, ctx):
        _require(
            ctx.results == [(0, b"a"), (1, b"b")],
            f"consumer saw {ctx.results!r}, expected items 0:a and 1:b in order",
        )
        _require(
            len(_kernel(ctx)) == 0,
            "refcount-1 items not reclaimed after both consumes",
        )


class ConsumeVsGcEpoch(Scenario):
    """A consume racing a full GC epoch (GcDaemon.run_once).

    The §4.2 guarantee under test: the horizon folds thread visibilities
    and channel unconsumed-minima, so the GC round must never reclaim the
    item the consumer is entitled to get, at any interleaving point.
    """

    name = "consume-vs-gc-epoch"
    description = "consume racing a GC epoch (GcDaemon.run_once)"

    def build(self):
        ctx = _cluster_ctx()
        ctx.producer_t = _register_thread(ctx, "producer", 0)
        ctx.consumer_t = _register_thread(ctx, "consumer", 0)
        ctx.out = ctx.space.attach(ctx.handle, is_input=False, thread=ctx.producer_t)
        ctx.inp = ctx.space.attach(ctx.handle, is_input=True, thread=ctx.consumer_t)
        ctx.put_done = [False, False]
        ctx.consumed0 = False
        return ctx

    def threads(self, ctx):
        def producer(ctx):
            ctx.space.put(ctx.handle, ctx.out, 0, b"a", 1)
            ctx.put_done[0] = True
            ctx.space.put(ctx.handle, ctx.out, 1, b"b", 1)
            ctx.put_done[1] = True
            ctx.producer_t.set_virtual_time(INFINITY)

        def consumer(ctx):
            payload, ts, _size = ctx.space.get(ctx.handle, ctx.inp, 0)
            ctx.results.append((ts, payload))
            ctx.space.consume(ctx.handle, ctx.inp, 0)
            ctx.consumed0 = True
            ctx.consumer_t.set_virtual_time(1)

        def gc(ctx):
            ctx.horizon = ctx.cluster.gc_once()

        return [("producer", producer), ("consumer", consumer), ("gc", gc)]

    def step_invariant(self, ctx):
        kernel = _kernel(ctx)
        _require(
            not ctx.put_done[0] or ctx.consumed0 or 0 in kernel.items,
            "GC reclaimed item ts=0 while still unconsumed (§4.2 violation)",
        )
        _require(
            not ctx.put_done[1] or 1 in kernel.items,
            "GC reclaimed item ts=1 while still unconsumed (§4.2 violation)",
        )

    def final_invariant(self, ctx):
        _require(ctx.results == [(0, b"a")], f"consumer saw {ctx.results!r}")
        _require(
            1 in _kernel(ctx).items,
            "unconsumed item ts=1 missing after the GC epoch",
        )


class DetachVsReclaim(Scenario):
    """An input detach racing the eager refcount reclaim of §6.

    Consumer A's consume drops the declared refcount to zero and reclaims
    the item while consumer B detaches its own view of the same channel.
    Both orders must commute: no exception, empty channel, no input views.
    """

    name = "detach-vs-reclaim"
    description = "input detach racing eager refcount reclaim"

    def build(self):
        ctx = _cluster_ctx()
        producer = _register_thread(ctx, "producer", 0)
        thread_a = _register_thread(ctx, "a", 0)
        thread_b = _register_thread(ctx, "b", 0)
        out = ctx.space.attach(ctx.handle, is_input=False, thread=producer)
        ctx.conn_a = ctx.space.attach(ctx.handle, is_input=True, thread=thread_a)
        ctx.conn_b = ctx.space.attach(ctx.handle, is_input=True, thread=thread_b)
        ctx.space.put(ctx.handle, out, 0, b"x", 1, refcount=1)
        return ctx

    def threads(self, ctx):
        def consume_a(ctx):
            payload, ts, _size = ctx.space.get(ctx.handle, ctx.conn_a, 0)
            ctx.results.append((ts, payload))
            ctx.space.consume(ctx.handle, ctx.conn_a, 0)

        def detach_b(ctx):
            ctx.space.detach(ctx.handle, ctx.conn_b)

        return [("consume-a", consume_a), ("detach-b", detach_b)]

    def final_invariant(self, ctx):
        kernel = _kernel(ctx)
        _require(ctx.results == [(0, b"x")], f"consumer A saw {ctx.results!r}")
        _require(len(kernel) == 0, "refcount-0 item survived the consume")
        _require(
            ctx.conn_b not in kernel.inputs,
            "detached connection still attached",
        )


class BoundedPutVsGet(Scenario):
    """A blocking put on a full bounded channel racing the get/consume
    that makes room.

    Exercises the park/targeted-wakeup path: the blocked put parks on a
    CHANNEL_FULL waiter; the consume must complete it (and the completed
    put must then satisfy a parked get, the drain cascade).  Deadlock
    freedom across all interleavings is the implicit property.
    """

    name = "bounded-put-vs-get"
    description = "bounded-channel blocking put racing get/consume"

    def build(self):
        ctx = _cluster_ctx(capacity=1)
        producer = _register_thread(ctx, "producer", 0)
        consumer = _register_thread(ctx, "consumer", 0)
        ctx.out = ctx.space.attach(ctx.handle, is_input=False, thread=producer)
        ctx.inp = ctx.space.attach(ctx.handle, is_input=True, thread=consumer)
        return ctx

    def threads(self, ctx):
        def producer(ctx):
            ctx.space.put(ctx.handle, ctx.out, 0, b"a", 1, refcount=1)
            # Blocks whenever ts=0 still occupies the single slot.
            ctx.space.put(ctx.handle, ctx.out, 1, b"b", 1, refcount=1)

        def consumer(ctx):
            for ts in (0, 1):
                payload, got_ts, _size = ctx.space.get(ctx.handle, ctx.inp, ts)
                ctx.results.append((got_ts, payload))
                ctx.space.consume(ctx.handle, ctx.inp, ts)

        return [("producer", producer), ("consumer", consumer)]

    def step_invariant(self, ctx):
        _require(
            len(_kernel(ctx)) <= 1,
            "bounded channel exceeded its capacity of 1",
        )

    def final_invariant(self, ctx):
        _require(
            ctx.results == [(0, b"a"), (1, b"b")],
            f"consumer saw {ctx.results!r}, expected 0:a then 1:b",
        )
        _require(len(_kernel(ctx)) == 0, "items not reclaimed")


class GcHorizonMonotonic(Scenario):
    """Two concurrent horizon applies must keep the watermark monotone.

    Regression scenario for the ``_gc_horizon_applied`` lost-update race:
    an explicit gc_once round racing the periodic daemon's apply could
    write a *lower* watermark over a higher one (read-modify-write without
    a lock), making later rounds re-collect.  Fixed by
    ``AddressSpace._gc_horizon_lock``.
    """

    name = "gc-horizon-monotonic"
    description = "concurrent GC applies keep the horizon watermark monotone"

    def build(self):
        ctx = _cluster_ctx()
        ctx.max_seen = 0
        return ctx

    def threads(self, ctx):
        def apply_low(ctx):
            ctx.space.apply_gc_horizon(1)

        def apply_high(ctx):
            ctx.space.apply_gc_horizon(2)

        return [("apply-low", apply_low), ("apply-high", apply_high)]

    def step_invariant(self, ctx):
        applied = ctx.space._gc_horizon_applied
        _require(
            applied >= ctx.max_seen,
            f"gc horizon watermark went backwards: {ctx.max_seen} -> {applied}",
        )
        ctx.max_seen = max(ctx.max_seen, applied)

    def final_invariant(self, ctx):
        _require(
            ctx.space._gc_horizon_applied == 2,
            f"final watermark {ctx.space._gc_horizon_applied}, expected 2",
        )


# ---------------------------------------------------------------------------
# seeded-bug scenarios (expect_violation=True)
# ---------------------------------------------------------------------------


class SeededAtomicityBreak(Scenario):
    """Check-then-act put: capacity test and insert in separate critical
    sections.  Two producers race a capacity-1 kernel; the stale check
    lets the loser's put hit a full channel."""

    name = "seeded-atomicity-break"
    description = "two-phase capacity check/insert put (TOCTOU)"
    expect_violation = True
    budget = 100

    def build(self):
        kernel = ChannelKernel(0, capacity=1)
        kernel.attach_output(1)
        kernel.attach_output(2)
        return SimpleNamespace(kernel=kernel, lock=make_lock("LocalChannel.lock"))

    def threads(self, ctx):
        def producer(ctx, conn_id):
            with ctx.lock:
                full = len(ctx.kernel) >= 1
            if full:
                return
            # BUG: the capacity check above is stale by the time the put
            # runs — atomicity of check+insert is broken across the two
            # critical sections.
            with ctx.lock:
                result = ctx.kernel.put(conn_id, conn_id, b"x", 1)
                if result.status is not Status.OK:
                    raise InvariantViolation(
                        "put hit a full channel after the capacity check "
                        "passed: check-then-act atomicity break"
                    )

        return [
            ("producer-1", lambda c: producer(c, 1)),
            ("producer-2", lambda c: producer(c, 2)),
        ]

    def teardown(self, ctx):
        pass


class SeededGcReclaimsLive(Scenario):
    """A GC round that snapshots the channel minimum but ignores thread
    visibilities, then applies the stale horizon after a put landed —
    reclaiming an item its producer is still entitled to get (§4.2
    explains exactly why the real protocol folds visibilities)."""

    name = "seeded-gc-reclaims-live"
    description = "stale-horizon GC reclaims a live item"
    expect_violation = True
    # The violating interleaving needs three context switches (snapshot /
    # put / apply / get); deepest-first DFS reaches it around run ~230.
    budget = 600

    def build(self):
        ctx = _cluster_ctx()
        worker = _register_thread(ctx, "worker", 0)
        ctx.out = ctx.space.attach(ctx.handle, is_input=False, thread=worker)
        ctx.inp = ctx.space.attach(ctx.handle, is_input=True, thread=worker)
        return ctx

    def threads(self, ctx):
        def worker(ctx):
            ctx.space.put(ctx.handle, ctx.out, 5, b"frame", 5)
            payload, ts, _size = ctx.space.get(ctx.handle, ctx.inp, 5)
            ctx.results.append((ts, payload))
            ctx.space.consume(ctx.handle, ctx.inp, 5)

        def bad_gc(ctx):
            channel = ctx.space._channels[ctx.handle.channel_id]
            with channel.lock:
                # BUG: the horizon is just the channel's unconsumed min —
                # thread visibilities are ignored, so an empty channel
                # yields INFINITY ("collect everything")...
                horizon = channel.kernel.unconsumed_min()
            # ...and by the time it is applied, the worker's put (licensed
            # by its visibility of 0) may have landed below it.
            ctx.space.apply_gc_horizon(horizon)

        return [("worker", worker), ("bad-gc", bad_gc)]

    def final_invariant(self, ctx):
        _require(ctx.results == [(5, b"frame")], f"worker saw {ctx.results!r}")


class SeededLostWakeup(Scenario):
    """The classic lost wakeup: the waiter re-checks its condition outside
    the lock and clears the event *after* the producer may already have
    set it, then waits forever."""

    name = "seeded-lost-wakeup"
    description = "clear-after-check waiter loses the producer's wakeup"
    expect_violation = True
    budget = 100

    def build(self):
        return SimpleNamespace(
            lock=make_lock("lw.lock"), event=make_event(), items=[]
        )

    def threads(self, ctx):
        def waiter(ctx):
            with ctx.lock:
                have = bool(ctx.items)
            if not have:
                # BUG: the producer's set() can land between the check
                # above and this clear(), which then erases the only
                # wakeup the waiter will ever get.
                ctx.event.clear()
                ctx.event.wait()
            with ctx.lock:
                if not ctx.items:
                    raise InvariantViolation("woken without an item")

        def producer(ctx):
            with ctx.lock:
                ctx.items.append(1)
            ctx.event.set()

        return [("waiter", waiter), ("producer", producer)]

    def teardown(self, ctx):
        pass


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in [
        PutGetConsume(),
        ConsumeVsGcEpoch(),
        DetachVsReclaim(),
        BoundedPutVsGet(),
        GcHorizonMonotonic(),
        SeededAtomicityBreak(),
        SeededGcReclaimsLive(),
        SeededLostWakeup(),
    ]
}
