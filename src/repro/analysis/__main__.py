"""``python -m repro.analysis`` entry point."""

import os
import sys

from repro.analysis.cli import main

try:
    code = main()
except BrokenPipeError:  # e.g. `... --list-rules | head`
    # Point stdout at devnull so the interpreter's exit-time flush of the
    # closed pipe doesn't print a second traceback.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 0
sys.exit(code)
