"""Vector-clock race detector (rules STM304/STM305).

A FastTrack-style happens-before detector layered on the STMSAN lock
instrumentation.  Every thread carries a vector clock; lock operations
induce the happens-before edges:

* ``release(L)`` publishes the releasing thread's clock into ``L`` and
  advances the thread's own component (the release starts a new epoch);
* ``acquire(L)`` joins ``L``'s clock into the acquiring thread's.

Monitored shared variables are the :class:`~repro.core.channel_state.
ChannelKernel` instances (every mutator is a *write*, ``unconsumed_min``
and friends are *reads* — wired in by :func:`~repro.analysis.sanitizer.
guard_kernel`) plus any state a test registers explicitly via
:func:`on_read`/:func:`on_write`.  An access unordered with a previous
access of the same variable is a race:

* write/write unordered → **STM305** (the kernel's sequential state
  machine driven concurrently);
* read/write unordered  → **STM304** (classic data race).

This is *precise* for the monitored variables: a reported race is a real
absence of a happens-before edge, not a heuristic (no false positives from
lock-set approximations — a variable consistently protected by *different*
locks at different times is fine as long as the lock handoffs order the
accesses).  Thread start/join edges are not modeled; workloads must order
pre-fork initialization through a lock (the runtime does — every kernel
touch sits under the channel lock).

Like the sanitizer, the detector records findings and lets the workload
finish; harnesses assert ``findings() == []`` afterwards.  Enable with
:func:`enable` (implies the sanitizer) or ``STMSAN=race``.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any

from repro.analysis.findings import Finding

__all__ = [
    "VectorClock",
    "enable",
    "disable",
    "enabled",
    "findings",
    "lock_acquired",
    "lock_released",
    "on_read",
    "on_write",
    "reset",
    "run_builtin_workload",
]

_enabled = False
_meta = threading.Lock()  # guards every table below; never held while
                          # taking a runtime lock (we run inside SanLock's
                          # own critical paths)
_findings: list[Finding] = []
_seen: set[tuple[str, str]] = set()


class VectorClock:
    """A sparse vector clock: logical thread id -> logical time."""

    __slots__ = ("clocks",)

    def __init__(self, clocks: dict[int, int] | None = None):
        self.clocks = dict(clocks) if clocks else {}

    def time_of(self, tid: int) -> int:
        return self.clocks.get(tid, 0)

    def tick(self, tid: int) -> None:
        self.clocks[tid] = self.clocks.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        for tid, clock in other.clocks.items():
            if clock > self.clocks.get(tid, 0):
                self.clocks[tid] = clock

    def copy(self) -> "VectorClock":
        return VectorClock(self.clocks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"T{t}:{c}" for t, c in sorted(self.clocks.items()))
        return f"<VC {inner}>"


class _Epoch:
    """One recorded access: (thread, clock at access, description)."""

    __slots__ = ("tid", "clock", "site")

    def __init__(self, tid: int, clock: int, site: str):
        self.tid = tid
        self.clock = clock
        self.site = site


class _VarState:
    """Per-variable race-detection state: last write + read map."""

    __slots__ = ("name", "last_write", "reads")

    def __init__(self, name: str):
        self.name = name
        self.last_write: _Epoch | None = None
        self.reads: dict[int, _Epoch] = {}


_thread_vc: dict[int, VectorClock] = {}
# Published lock clocks and per-variable states live *on* the instrumented
# objects (``_rc_vc`` / ``_rc_state`` attributes) so their lifetime matches
# the object's: an id()-keyed table would alias recycled ids across a long
# run and invent races between unrelated objects.  Objects that reject
# attributes (slotted classes outside our control) fall back to these maps
# — a deliberate precision/lifetime trade-off for foreign types.
_lock_vc_fallback: dict[int, VectorClock] = {}
_vars_fallback: dict[int, _VarState] = {}


def enabled() -> bool:
    return _enabled


def enable() -> None:
    """Turn race detection on (also enables the sanitizer, which owns the
    lock and kernel instrumentation the detector feeds on)."""
    global _enabled
    from repro.analysis import sanitizer

    if not sanitizer.enabled():
        sanitizer.enable()
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def reset() -> None:
    """Drop all clocks, variable states, and findings."""
    with _meta:
        _findings.clear()
        _seen.clear()
        _thread_vc.clear()
        _lock_vc_fallback.clear()
        _vars_fallback.clear()


def findings() -> list[Finding]:
    with _meta:
        return list(_findings)


_tid_tls = threading.local()
_next_tid = itertools.count(1)


def _my_tid() -> int:
    """A *logical* thread id: unique for the life of the process.

    ``threading.get_ident()`` is recycled when a thread exits; a recycled
    ident would hand a new thread the dead thread's clock — falsely
    ordering accesses that share no happens-before edge.  A thread-local
    counter can never be inherited.
    """
    tid = getattr(_tid_tls, "tid", None)
    if tid is None:
        tid = _tid_tls.tid = next(_next_tid)
    return tid


def _vc_of(tid: int) -> VectorClock:
    vc = _thread_vc.get(tid)
    if vc is None:
        vc = _thread_vc[tid] = VectorClock({tid: 1})
    return vc


# ---------------------------------------------------------------------------
# happens-before edges from lock operations (called by SanLock)
# ---------------------------------------------------------------------------


def lock_acquired(lock: Any) -> None:
    """acquire(L): thread clock joins L's clock."""
    if not _enabled:
        return
    tid = _my_tid()
    with _meta:
        published = getattr(lock, "_rc_vc", None)
        if published is None:
            published = _lock_vc_fallback.get(id(lock))
        if published is not None:
            _vc_of(tid).join(published)


def lock_released(lock: Any) -> None:
    """release(L): publish the thread clock into L, start a new epoch."""
    if not _enabled:
        return
    tid = _my_tid()
    with _meta:
        vc = _vc_of(tid)
        try:
            lock._rc_vc = vc.copy()
        except AttributeError:  # slotted foreign lock type
            _lock_vc_fallback[id(lock)] = vc.copy()
        vc.tick(tid)


# ---------------------------------------------------------------------------
# monitored accesses
# ---------------------------------------------------------------------------


def _ordered(prior: _Epoch, vc: VectorClock) -> bool:
    """prior happened-before now iff its epoch is covered by our clock."""
    return prior.clock <= vc.time_of(prior.tid)


def _record(rule_id: str, var: _VarState, prior: _Epoch, site: str) -> None:
    key = (rule_id, f"{var.name}|{prior.site}|{site}")
    if key in _seen:
        return
    _seen.add(key)
    kind = "write/write" if rule_id == "STM305" else "read/write"
    _findings.append(
        Finding(
            rule_id,
            file=f"racecheck/{var.name}",
            line=0,
            message=(
                f"{kind} race on {var.name}: '{site}' is unordered with "
                f"'{prior.site}' (no happens-before edge between the "
                "accessing threads)"
            ),
            detail=f"prior access: {prior.site} (thread T{prior.tid})\n"
            f"racing access: {site} (thread T{_my_tid()})",
        )
    )


def _var_state(var: Any, name: str) -> _VarState:
    state = getattr(var, "_rc_state", None)
    if state is None:
        state = _vars_fallback.get(id(var))
    if state is None:
        state = _VarState(name)
        try:
            var._rc_state = state
        except AttributeError:  # slotted foreign type
            _vars_fallback[id(var)] = state
    return state


def on_write(var: Any, name: str, site: str) -> None:
    """Record a write of ``var`` by the current thread; report races."""
    if not _enabled:
        return
    tid = _my_tid()
    with _meta:
        vc = _vc_of(tid)
        state = _var_state(var, name)
        if state.last_write is not None and not _ordered(state.last_write, vc):
            _record("STM305", state, state.last_write, site)
        for read in state.reads.values():
            if read.tid != tid and not _ordered(read, vc):
                _record("STM304", state, read, site)
        state.last_write = _Epoch(tid, vc.time_of(tid), site)
        state.reads.clear()


def on_read(var: Any, name: str, site: str) -> None:
    """Record a read of ``var`` by the current thread; report races."""
    if not _enabled:
        return
    tid = _my_tid()
    with _meta:
        vc = _vc_of(tid)
        state = _var_state(var, name)
        if (
            state.last_write is not None
            and state.last_write.tid != tid
            and not _ordered(state.last_write, vc)
        ):
            _record("STM304", state, state.last_write, site)
        state.reads[tid] = _Epoch(tid, vc.time_of(tid), site)


# ---------------------------------------------------------------------------
# the bundled real-thread workload (``python -m repro.analysis racecheck``)
# ---------------------------------------------------------------------------


def run_builtin_workload(
    pairs: int = 3, items: int = 150
) -> list[Finding]:
    """Drive a real-thread STM stress under the detector; return findings.

    ``pairs`` producer/consumer thread pairs hammer bounded channels while
    the periodic GC daemon races them, so every happens-before edge the
    runtime claims (channel locks, GC epochs) is exercised with genuine
    preemption.  Returns the combined racecheck + sanitizer findings of the
    run; on a correct runtime the list is empty.
    """
    from repro.analysis import sanitizer
    from repro.core.time import INFINITY
    from repro.runtime.cluster import Cluster
    from repro.runtime.threads import StampedeThread

    was_race = enabled()
    was_san = sanitizer.enabled()
    enable()
    sanitizer.reset()
    reset()
    errors: list[BaseException] = []
    try:
        with Cluster(n_spaces=1, gc_period=0.005) as cluster:
            space = cluster.space(0)

            def produce(handle, thread, out):
                for ts in range(items):
                    space.put(handle, out, ts, b"x" * 32, 32, refcount=1)
                    thread.set_virtual_time(ts + 1)
                space.detach(handle, out)
                thread.set_virtual_time(INFINITY)

            def consume(handle, thread, inp):
                for ts in range(items):
                    space.get(handle, inp, ts)
                    space.consume(handle, inp, ts)
                    thread.set_virtual_time(ts + 1)
                space.detach(handle, inp)
                thread.set_virtual_time(INFINITY)

            def trap(fn, *args):
                try:
                    fn(*args)
                except BaseException as exc:  # noqa: BLE001 - reported below
                    errors.append(exc)

            workers = []
            for i in range(pairs):
                handle = space.create_channel(capacity=8)
                # Threads register + attach *before* any worker starts:
                # visibilities must pin the GC horizon from the first
                # daemon epoch, not from whenever a body gets scheduled.
                for fn, role, is_input in (
                    (produce, "prod", False),
                    (consume, "cons", True),
                ):
                    thread = StampedeThread(space, f"rc-{role}-{i}", 0)
                    space._threads[thread.name] = thread
                    conn = space.attach(handle, is_input=is_input, thread=thread)
                    worker = threading.Thread(
                        target=trap, args=(fn, handle, thread, conn), daemon=True
                    )
                    workers.append(worker)
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=60.0)
        if errors:
            raise errors[0]
        return findings() + sanitizer.findings()
    finally:
        if not was_race:
            disable()
        if not was_san:
            sanitizer.disable()
