"""Baseline (suppression) files: grandfather known findings, stay strict on new ones.

Format is one key per line, ``rule_id|path|line``, with ``#`` comments::

    # gather under GcDaemon._lock serializes whole GC rounds by design
    STM103|src/repro/runtime/gc_daemon.py|88

A trailing ``|*`` wildcard line matches every line of that rule/file pair,
for findings whose line numbers churn with unrelated edits::

    STM205|benchmarks/legacy_harness.py|*
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.findings import Finding

__all__ = ["load_baseline", "write_baseline", "split_baselined"]


def load_baseline(path: str | Path) -> set[str]:
    """Read baseline keys; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return set()
    keys: set[str] = set()
    for raw in p.read_text().splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            keys.add(line)
    return keys


def write_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write every finding's key, sorted, with a header comment."""
    lines = [
        "# repro.analysis baseline: rule_id|path|line (| * wildcards the line).",
        "# Regenerate with: python -m repro.analysis --write-baseline",
    ]
    lines.extend(sorted({f.baseline_key() for f in findings}))
    Path(path).write_text("\n".join(lines) + "\n")


def split_baselined(
    findings: list[Finding], baseline: set[str]
) -> tuple[list[Finding], list[Finding]]:
    """Partition into (new, baselined) against exact and wildcard keys."""
    new: list[Finding] = []
    old: list[Finding] = []
    for f in findings:
        wildcard = f"{f.rule_id}|{f.file}|*"
        if f.baseline_key() in baseline or wildcard in baseline:
            old.append(f)
        else:
            new.append(f)
    return new, old
