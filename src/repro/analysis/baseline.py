"""Baseline (suppression) files: grandfather known findings, stay strict on new ones.

Format is one key per line, ``rule_id|path|line``, with ``#`` comments::

    # gather under GcDaemon._lock serializes whole GC rounds by design
    STM103|src/repro/runtime/gc_daemon.py|88

A trailing ``|*`` wildcard line matches every line of that rule/file pair,
for findings whose line numbers churn with unrelated edits::

    STM205|benchmarks/legacy_harness.py|*
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.findings import Finding

__all__ = [
    "load_baseline",
    "write_baseline",
    "split_baselined",
    "stale_entries",
    "prune_baseline",
]


def load_baseline(path: str | Path) -> set[str]:
    """Read baseline keys; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return set()
    keys: set[str] = set()
    for raw in p.read_text().splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            keys.add(line)
    return keys


def write_baseline(
    path: str | Path, findings: list[Finding], extra_keys: set[str] | None = None
) -> None:
    """Write every finding's key, sorted, with a header comment.

    ``extra_keys`` lets a caller preserve entries owned by rule families
    the current invocation did not run (the static passes and the
    channel-graph pass share one baseline file).
    """
    lines = [
        "# repro.analysis baseline: rule_id|path|line (| * wildcards the line).",
        "# Regenerate with: python -m repro.analysis --write-baseline",
    ]
    lines.extend(sorted({f.baseline_key() for f in findings} | set(extra_keys or ())))
    Path(path).write_text("\n".join(lines) + "\n")


def split_baselined(
    findings: list[Finding], baseline: set[str]
) -> tuple[list[Finding], list[Finding]]:
    """Partition into (new, baselined) against exact and wildcard keys."""
    new: list[Finding] = []
    old: list[Finding] = []
    for f in findings:
        wildcard = f"{f.rule_id}|{f.file}|*"
        if f.baseline_key() in baseline or wildcard in baseline:
            old.append(f)
        else:
            new.append(f)
    return new, old


def stale_entries(baseline: set[str], findings: list[Finding]) -> set[str]:
    """Baseline keys (exact or wildcard) no current finding matches.

    Stale entries are harmless but misleading: they read as documented
    defects that in fact no longer exist, and they can silently mask a
    future regression at the same location.  The CLI reports them as a
    warning; ``--prune-baseline`` rewrites the file without them.
    """
    live: set[str] = set()
    for f in findings:
        exact = f.baseline_key()
        wildcard = f"{f.rule_id}|{f.file}|*"
        if exact in baseline:
            live.add(exact)
        if wildcard in baseline:
            live.add(wildcard)
    return {k for k in baseline if k not in live}


def prune_baseline(path: str | Path, stale: set[str]) -> set[str]:
    """Rewrite the baseline file without the given stale keys; comments
    and unrelated entries survive.  The caller decides what counts as
    stale (typically :func:`stale_entries` filtered to the rule families
    the current invocation actually ran, so a lockcheck-only run cannot
    prune the channel-graph pass's entries).

    Returns the keys actually removed; a missing file is a no-op.
    """
    p = Path(path)
    if not p.exists() or not stale:
        return set()
    present = {k for k in load_baseline(p) if k in stale}
    if not present:
        return set()
    kept: list[str] = []
    for raw in p.read_text().splitlines():
        line = raw.strip()
        if line and not line.startswith("#") and line in present:
            continue
        kept.append(raw)
    p.write_text("\n".join(kept) + "\n")
    return present
