"""Static lock-discipline pass over the runtime (rules STM101-103).

The runtime's convention is: every lock is named ``lock`` / ``*_lock`` /
``*_locks`` (per-key lock tables), is only ever taken with a ``with``
statement, and nested acquisitions follow one global order.  This pass
enforces the convention lexically:

* **STM101** — ``something_lock.acquire()`` outside a ``with``.
* **STM102** — the nested-``with`` graph over canonical lock names has a
  cycle somewhere in the scanned tree (each edge on a cycle is reported).
* **STM103** — a blocking call (``Event.wait``, ``sleep``, ``join``,
  ``recv``, RPC ``call``/``gather``) lexically inside a ``with``-lock body.

Lock names are canonicalised to ``Class.attr`` for ``self``-attached locks
(so ``GcDaemon._lock`` and ``StampedeThread._lock`` stay distinct) and to
the bare attribute name otherwise (``channel.lock`` → ``lock``).

The dynamic complement — real per-thread held sets and the runtime lock
order — lives in :mod:`repro.analysis.sanitizer` (STM301/STM302).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = ["check_lock_discipline"]

#: method names considered blocking for STM103.
_BLOCKING = {"wait", "sleep", "join", "recv", "gather", "call", "wait_for_tick"}


def _lock_name(expr: ast.expr) -> str | None:
    """Return the bare lock name for a lock-like expression, else None."""
    while isinstance(expr, ast.Subscript):  # self._order_locks[(a, b)]
        expr = expr.value
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    else:
        return None
    if name == "lock" or name.endswith("_lock") or name.endswith("_locks"):
        return name
    return None


def _canonical(expr: ast.expr, cls: str | None) -> str | None:
    """Qualify self-attached locks with the enclosing class name."""
    name = _lock_name(expr)
    if name is None:
        return None
    target = expr
    while isinstance(target, ast.Subscript):
        target = target.value
    if (
        cls
        and isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return f"{cls}.{name}"
    return name


@dataclass
class _Edge:
    outer: str
    inner: str
    file: str
    line: int


@dataclass
class _FileScan(ast.NodeVisitor):
    """One file's walk: held-lock stack, acquire() calls, blocking calls."""

    src: SourceFile
    findings: list[Finding]
    edges: list[_Edge]
    _held: list[str] = field(default_factory=list)
    _cls: str | None = None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        prev, self._cls = self._cls, node.name
        self.generic_visit(node)
        self._cls = prev

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        taken: list[str] = []
        for item in node.items:
            name = _canonical(item.context_expr, self._cls)
            if name is None:
                continue
            for outer in self._held + taken:
                self.edges.append(
                    _Edge(outer, name, self.src.display, item.context_expr.lineno)
                )
            taken.append(name)
        self._held.extend(taken)
        for stmt in node.body:
            self.visit(stmt)
        if taken:
            del self._held[-len(taken):]

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "acquire" and _lock_name(func.value) is not None:
                self.findings.append(
                    Finding(
                        "STM101",
                        self.src.display,
                        node.lineno,
                        f"lock '{ast.unparse(func.value)}' acquired with "
                        ".acquire() instead of a 'with' block",
                    )
                )
            elif func.attr in _BLOCKING and self._held:
                self.findings.append(
                    Finding(
                        "STM103",
                        self.src.display,
                        node.lineno,
                        f"blocking call '{ast.unparse(func)}()' while holding "
                        f"lock(s) {', '.join(self._held)}",
                    )
                )
        self.generic_visit(node)


def check_lock_discipline(sources: list[SourceFile]) -> list[Finding]:
    """Run STM101-103 over the parsed sources."""
    findings: list[Finding] = []
    edges: list[_Edge] = []
    for src in sources:
        _FileScan(src, findings, edges).visit(src.tree)

    graph: dict[str, set[str]] = {}
    for e in edges:
        graph.setdefault(e.outer, set()).add(e.inner)

    def reaches(start: str, goal: str) -> bool:
        seen: set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))
        return False

    reported: set[tuple[str, str]] = set()
    for e in edges:
        if (e.outer, e.inner) in reported:
            continue
        # the edge is on a cycle iff the inner lock can reach the outer one
        if e.outer == e.inner or reaches(e.inner, e.outer):
            reported.add((e.outer, e.inner))
            findings.append(
                Finding(
                    "STM102",
                    e.file,
                    e.line,
                    f"lock '{e.inner}' acquired while holding '{e.outer}' "
                    "here, but the opposite order exists elsewhere in the "
                    "scanned tree (potential deadlock)",
                )
            )
    return findings
