"""Correctness tooling for the STM runtime and the paper's API discipline.

Three coordinated passes, one ``Finding`` model, one CLI::

    python -m repro.analysis                 # static passes on src/ + examples/
    python -m repro.analysis --list-rules    # the rule catalog
    STMSAN=1 python -m pytest ...            # dynamic sanitizer (lock order,
                                             # kernel mutations, use-after-reclaim)

* :mod:`repro.analysis.lockcheck` — static lock-discipline pass (STM101-103).
* :mod:`repro.analysis.absint` — CFG-based abstract interpreter: the
  path-sensitive STM201-205 protocol checker (backing the ``protolint``
  pass) plus the STM601-604 symbolic virtual-time rules (``absint``
  subcommand).
* :mod:`repro.analysis.protolint` — the legacy lexical STM201-205 walker,
  kept as the differential oracle for the abstract interpreter.
* :mod:`repro.analysis.sanitizer` — runtime shim recording dynamic findings
  (STM301-303) when ``STMSAN=1`` or :func:`sanitizer.enable` is called.
* :mod:`repro.analysis.stmgraph` — whole-program channel dataflow graph and
  the interprocedural STM501-505 rules (``stmgraph`` subcommand, with
  ``--format dot|json`` topology export).

All passes emit :class:`repro.analysis.findings.Finding` records with stable
rule ids; :mod:`repro.analysis.baseline` lets CI be strict on new code while
grandfathering documented findings, and :mod:`repro.analysis.sarif` renders
any finding list as SARIF 2.1.0 for code-scanning upload.
"""

from repro.analysis.findings import Finding, Rule, RULES, Severity
from repro.analysis.cli import main, run_static_passes

__all__ = ["Finding", "Rule", "RULES", "Severity", "main", "run_static_passes"]
