"""SARIF 2.1.0 export for analysis findings.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests; emitting it from ``python -m repro.analysis
--format sarif`` lets CI annotate PRs with STM### findings directly.

One run per report: the tool driver lists exactly the rules that fired
(stable ``STM###`` ids from :data:`repro.analysis.findings.RULES`), and
each result carries the standard level/message/physicalLocation triple.
Baselined findings are still present but marked with an ``external``
suppression so code-scanning treats them as triaged rather than new.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, RULES, Severity

__all__ = ["sarif_report"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def sarif_report(
    findings: list[Finding],
    baselined: list[Finding] | None = None,
    tool_name: str = "repro.analysis",
) -> dict:
    """Build a SARIF 2.1.0 document (a plain dict, ready for json.dump).

    ``findings`` are new results; ``baselined`` ones are included with a
    suppression record so dashboards show them as known, not regressions.
    """
    baselined = baselined or []
    every = list(findings) + list(baselined)

    rule_ids = sorted({f.rule_id for f in every})
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    rules = []
    for rid in rule_ids:
        rule = RULES.get(rid)
        entry = {
            "id": rid,
            "name": rid,
            "shortDescription": {"text": rule.title if rule else rid},
            "fullDescription": {"text": rule.description if rule else ""},
            "defaultConfiguration": {
                "level": _level(rule.severity) if rule else "error"
            },
        }
        rules.append(entry)

    def result(f: Finding, suppressed: bool) -> dict:
        out = {
            "ruleId": f.rule_id,
            "ruleIndex": rule_index[f.rule_id],
            "level": _level(f.severity),
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.file.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": f.line},
                    }
                }
            ],
        }
        if suppressed:
            out["suppressions"] = [
                {"kind": "external", "justification": "baselined finding"}
            ]
        return out

    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [result(f, False) for f in findings]
                + [result(f, True) for f in baselined],
            }
        ],
    }
