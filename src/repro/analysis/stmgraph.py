"""Whole-program channel-graph analysis (rules STM501-506).

Where :mod:`repro.analysis.protolint` reasons about one function at a time,
this pass extracts a **channel dataflow graph** for the whole scanned
program and checks properties that only exist at the graph level — the
paper's global guarantees (GC advances only past items every attached input
has consumed, §4; bounded channels make put/get a blocking protocol whose
safety is a topology property, not a scope property).

The pass runs in three phases:

1. **Summaries.**  Every function (module bodies, methods, nested closures)
   is summarized: channel bindings (``stm.create_channel("name",
   capacity=N)`` / ``stm.lookup("name")``, names resolved through
   module-level constants), attach sites (input/output, including
   ``with attach(...) as conn:`` aliasing and attaches on channel-valued
   *parameters*), put/get/consume/consume_until/detach operations with
   blocking flags and literal/parameter timestamps, spawn edges
   (``space.spawn(fn, ...)``, ``threading.Thread(target=fn)``), held-lock
   context, and call sites with the connection/channel/int arguments they
   forward.

2. **Linking.**  Summaries are propagated through the call graph: a helper
   that consumes its connection parameter discharges the caller's
   obligation; a helper that attaches to its channel parameter creates an
   attach site for every calling thread; blocking STM behaviour and
   timestamp-parameter puts flow back to call sites.  Thread roots are the
   spawn targets plus uncalled entry functions; each root's transitive
   attach sites become the graph's put/get edges.

3. **Rules.**  STM501 bounded-channel wait cycle, STM502 interprocedural
   GC starvation, STM503 orphan producer, STM504 cross-procedure timestamp
   regression, STM505 blocking STM call under a runtime lock, STM506
   wall-clock sleep on an STM kernel path (fatal to the asyncio runtime,
   where ``time.sleep`` parks the whole event loop).

The extracted :class:`ChannelGraph` is also an artifact in its own right:
``--format json|dot`` exports the topology (threads as boxes, channels as
ellipses), and :meth:`ChannelGraph.placement_model` seeds
:mod:`repro.runtime.placement` with the statically discovered stage chain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

__all__ = [
    "ChannelGraph",
    "ThreadNode",
    "ChannelNode",
    "GraphEdge",
    "extract_graph",
    "check_channel_graph",
]

# ----------------------------------------------------------------------
# vocabulary (kept in sync with protolint's)
# ----------------------------------------------------------------------
_ATTACH_INPUT = {"attach_input", "spd_attach_input_channel"}
_ATTACH_OUTPUT = {"attach_output", "spd_attach_output_channel"}
_GET = {"get", "get_consume", "spd_channel_get_item"}
_CONSUME = {
    "consume",
    "consume_until",
    "get_consume",
    "spd_channel_consume_item",
    "spd_channel_consume_items_until",
}
_PUT = {"put", "spd_channel_put_item"}
_DETACH = {"detach", "spd_detach_channel"}
_CHANNEL_MAKERS = {"create_channel"}
_CHANNEL_FINDERS = {"lookup", "lookup_channel"}
_SPAWNERS = {"spawn"}
#: get-request wildcard spellings that mark a ``.get`` as an STM get (and
#: not, say, ``dict.get``) when the receiver is otherwise ambiguous.
_WILDCARDS = {
    "STM_LATEST",
    "STM_OLDEST",
    "STM_LATEST_UNSEEN",
    "STM_OLDEST_UNSEEN",
}

_Path = tuple[tuple[int, int], ...]


def _lock_like(expr: ast.expr) -> str | None:
    """The runtime's lock naming convention (shared with lockcheck)."""
    while isinstance(expr, ast.Subscript):
        expr = expr.value
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    else:
        return None
    if name == "lock" or name.endswith("_lock") or name.endswith("_locks"):
        return name
    return None


# ----------------------------------------------------------------------
# per-function summary model
# ----------------------------------------------------------------------
#: how a channel's capacity is known: ("bounded", n) | "unbounded" | "unknown"
_Cap = tuple


@dataclass
class _ConnDecl:
    """One attach site binding a local variable to a connection."""

    var: str
    direction: str                      # "input" | "output"
    #: resolved channel key, ("param", idx) for parameter channels, or None
    channel: object
    line: int
    escaped: bool = False


@dataclass
class _Op:
    kind: str                           # put | get | consume | detach | lookup_wait
    #: ("conn", var) | ("param", idx) — what the op acts on
    target: tuple
    line: int
    path: _Path
    blocking: bool = True
    ts_literal: int | None = None
    ts_param: int | None = None
    lock: str | None = None


@dataclass
class _CallSite:
    callee: str
    line: int
    path: _Path
    lock: str | None
    #: arg position -> ("conn", var) | ("chan", key) | ("int", value)
    args: dict[int, tuple] = field(default_factory=dict)


@dataclass
class _ParamAttach:
    """``def f(chan): inp = chan.attach_input()`` — instantiated per caller."""

    param: int
    direction: str
    line: int
    conn_var: str | None                # local var the connection binds to


@dataclass
class _Summary:
    """Everything the linker needs to know about one function."""

    module: str                         # display path of the defining file
    file: str
    qualname: str
    name: str
    line: int
    is_async: bool = False
    params: list[str] = field(default_factory=list)
    #: wall-clock ``time.sleep`` call sites (lines) in this scope
    sleeps: list[int] = field(default_factory=list)
    conns: dict[str, _ConnDecl] = field(default_factory=dict)
    channels: dict[str, str] = field(default_factory=dict)   # var -> key
    creates: dict[str, _Cap] = field(default_factory=dict)   # key -> capacity
    create_lines: dict[str, int] = field(default_factory=dict)
    ops: list[_Op] = field(default_factory=list)
    calls: list[_CallSite] = field(default_factory=list)
    spawns: list[tuple[str, int]] = field(default_factory=list)
    param_attaches: list[_ParamAttach] = field(default_factory=list)
    #: params that behave like connections (have STM ops on them)
    conn_params: set[int] = field(default_factory=set)

    @property
    def id(self) -> str:
        return f"{self.module}::{self.qualname}"

    @property
    def label(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


def _terminates(stmts: list[ast.stmt], from_index: int) -> bool:
    return any(
        isinstance(s, (ast.Break, ast.Continue, ast.Return, ast.Raise))
        for s in stmts[from_index:]
    )


class _FuncWalker:
    """Build the summary of one scope (statement-path order preserved)."""

    def __init__(
        self,
        body: list[ast.stmt],
        summary: _Summary,
        consts: dict[str, object],
        parent: "_FuncWalker | None" = None,
        sleep_aliases: tuple[set[str], set[str]] | None = None,
    ) -> None:
        self.summary = summary
        self.consts = consts
        self.parent = parent
        #: ({module aliases of time}, {bare names bound to time.sleep})
        self.sleep_aliases = sleep_aliases or (set(), set())
        #: (body, qualname, summary-factory args) of nested functions
        self.nested: list[tuple[list[ast.stmt], str, list[str], int, bool]] = []
        self.lists: dict[int, list[ast.stmt]] = {}
        self._recognized: set[int] = set()
        self._locks: list[str] = []
        self._walk_block(body, ())

    # -- ordering (same machinery as protolint) ---------------------------

    def strictly_precedes(self, a: _Path, b: _Path) -> bool:
        i = 0
        while i < len(a) and i < len(b) and a[i] == b[i]:
            i += 1
        if i == len(a) or i == len(b):
            return False
        (a_list, a_idx), (b_list, b_idx) = a[i], b[i]
        if a_list != b_list or a_idx >= b_idx:
            return False
        for list_id, idx in a[i + 1:]:
            if _terminates(self.lists[list_id], idx):
                return False
        return True

    # -- name resolution helpers ------------------------------------------

    def _const_value(self, expr: ast.expr) -> object:
        if isinstance(expr, ast.Constant):
            return expr.value
        if isinstance(expr, ast.Name) and expr.id in self.consts:
            return self.consts[expr.id]
        return None

    def _channel_key_of_call(self, call: ast.Call) -> tuple[str | None, _Cap]:
        """Resolve ``X.create_channel(...)`` / ``X.lookup(...)``."""
        func = call.func
        meth = func.attr if isinstance(func, ast.Attribute) else None
        if meth in _CHANNEL_MAKERS:
            name = None
            if call.args:
                name = self._const_value(call.args[0])
            for kw in call.keywords:
                if kw.arg == "name":
                    name = self._const_value(kw.value)
            cap: _Cap = ("unbounded",)
            for kw in call.keywords:
                if kw.arg == "capacity":
                    value = self._const_value(kw.value)
                    if value is None and isinstance(kw.value, ast.Constant):
                        cap = ("unbounded",)
                    elif isinstance(value, int) and not isinstance(value, bool):
                        cap = ("bounded", value)
                    else:
                        cap = ("unknown",)
            key = name if isinstance(name, str) else None
            return key, cap
        if meth in _CHANNEL_FINDERS:
            name = self._const_value(call.args[0]) if call.args else None
            return (name if isinstance(name, str) else None), ("unknown",)
        return None, ("unknown",)

    def _resolve_channel_expr(self, expr: ast.expr) -> object:
        """Channel key, ("param", idx), or None for a channel-valued expr."""
        if isinstance(expr, ast.Name):
            if expr.id in self.summary.channels:
                return self.summary.channels[expr.id]
            if expr.id in self.summary.params:
                return ("param", self.summary.params.index(expr.id))
            return None
        if isinstance(expr, ast.Call):
            meth = expr.func.attr if isinstance(expr.func, ast.Attribute) else None
            if meth in _CHANNEL_MAKERS | _CHANNEL_FINDERS:
                key, cap = self._channel_key_of_call(expr)
                if key is not None and meth in _CHANNEL_MAKERS:
                    self._record_create(key, cap, expr.lineno)
                return key
        return None

    def _record_create(self, key: str, cap: _Cap, line: int) -> None:
        prior = self.summary.creates.get(key)
        if prior is None or (prior[0] != "bounded" and cap[0] == "bounded"):
            self.summary.creates[key] = cap
            self.summary.create_lines.setdefault(key, line)

    def _attach_direction(self, call: ast.Call) -> str | None:
        func = call.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name in _ATTACH_INPUT:
            return "input"
        if name in _ATTACH_OUTPUT:
            return "output"
        return None

    # -- statement walk ----------------------------------------------------

    def _walk_block(self, stmts: list[ast.stmt], prefix: _Path) -> None:
        self.lists[id(stmts)] = stmts
        for idx, stmt in enumerate(stmts):
            self._walk_stmt(stmt, prefix + ((id(stmts), idx),))

    def _walk_stmt(self, stmt: ast.stmt, path: _Path) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested.append(
                (
                    stmt.body,
                    f"{self.summary.qualname}.{stmt.name}",
                    [a.arg for a in stmt.args.args],
                    stmt.lineno,
                    isinstance(stmt, ast.AsyncFunctionDef),
                )
            )
            return
        if isinstance(stmt, ast.ClassDef):
            return  # class bodies are collected as their own scopes
        if isinstance(stmt, ast.Assign):
            self._handle_assign(stmt.targets, stmt.value, path)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._handle_assign([stmt.target], stmt.value, path)
        held_here = 0
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                lock = _lock_like(item.context_expr)
                if lock is not None:
                    self._locks.append(lock)
                    held_here += 1
                    continue
                ctx = item.context_expr
                if isinstance(ctx, ast.Call):
                    direction = self._attach_direction(ctx)
                    if direction is not None and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        var = item.optional_vars.id
                        self._declare_conn(var, direction, ctx, path)
                        # the context manager detaches on exit
                        self._op("detach", ("conn", var), ctx.lineno, path)
        for node in self._iter_exprs(stmt):
            if isinstance(node, ast.Call):
                self._handle_call(node, path)
        for node in self._iter_exprs(stmt):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in self._recognized
            ):
                self._note_plain_use(node.id)
        for block in self._child_blocks(stmt):
            self._walk_block(block, path)
        if held_here:
            del self._locks[-held_here:]

    def _child_blocks(self, stmt: ast.stmt) -> list[list[ast.stmt]]:
        blocks: list[list[ast.stmt]] = []
        for name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, name, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                blocks.append(block)
        for handler in getattr(stmt, "handlers", []):
            blocks.append(handler.body)
        return blocks

    def _iter_exprs(self, stmt: ast.stmt):
        todo: list[ast.AST] = []
        for fname, value in ast.iter_fields(stmt):
            if fname in ("body", "orelse", "finalbody", "handlers"):
                continue
            if isinstance(value, ast.AST):
                todo.append(value)
            elif isinstance(value, list):
                todo.extend(v for v in value if isinstance(v, ast.AST))
        while todo:
            node = todo.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                        yield sub
                continue
            yield node
            todo.extend(ast.iter_child_nodes(node))

    # -- events ------------------------------------------------------------

    def _current_lock(self) -> str | None:
        return self._locks[-1] if self._locks else None

    def _op(self, kind: str, target: tuple, line: int, path: _Path,
            blocking: bool = True, ts_literal: int | None = None,
            ts_param: int | None = None) -> None:
        self.summary.ops.append(
            _Op(kind, target, line, path, blocking, ts_literal, ts_param,
                self._current_lock())
        )
        if target[0] == "param":
            self.summary.conn_params.add(target[1])

    def _declare_conn(self, var: str, direction: str, attach_call: ast.Call,
                      path: _Path) -> None:
        func = attach_call.func
        channel: object = None
        if isinstance(func, ast.Attribute):
            channel = self._resolve_channel_expr(func.value)
        elif isinstance(func, ast.Name) and attach_call.args:
            channel = self._resolve_channel_expr(attach_call.args[0])
        if isinstance(channel, tuple) and channel and channel[0] == "param":
            self.summary.param_attaches.append(
                _ParamAttach(channel[1], direction, attach_call.lineno, var)
            )
        self.summary.conns[var] = _ConnDecl(
            var, direction, channel, attach_call.lineno
        )

    def _note_plain_use(self, name: str) -> None:
        """A Load of a tracked connection outside any recognized op/call:
        the connection escapes (returned, yielded, stored, captured)."""
        walker: _FuncWalker | None = self
        while walker is not None:
            decl = walker.summary.conns.get(name)
            if decl is not None:
                decl.escaped = True
                return
            walker = walker.parent

    def _target_for(self, name: str) -> tuple | None:
        """Resolve an op receiver: local conn, param, or an ancestor's conn."""
        if name in self.summary.conns:
            return ("conn", name)
        if name in self.summary.params:
            return ("param", self.summary.params.index(name))
        walker = self.parent
        while walker is not None:
            if name in walker.summary.conns:
                # closure op on an enclosing function's connection: attribute
                # it to the defining scope so obligations stay discharged.
                return ("outer", walker, name)
            walker = walker.parent
        return None

    def _handle_assign(self, targets: list[ast.expr], value: ast.expr,
                       path: _Path) -> None:
        while isinstance(value, (ast.Await, ast.YieldFrom)):
            value = value.value
        candidates = [value]
        if isinstance(value, ast.IfExp):
            candidates = [value.body, value.orelse]
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            for val in candidates:
                if not isinstance(val, ast.Call):
                    continue
                direction = self._attach_direction(val)
                if direction is not None:
                    self._declare_conn(target.id, direction, val, path)
                    self._recognize_call_names(val)
                    break
                key = self._resolve_channel_expr(val)
                if isinstance(key, str):
                    self.summary.channels[target.id] = key
                    self._recognize_call_names(val)
                    break

    def _recognize_call_names(self, call: ast.Call) -> None:
        """Mark a call's receiver chain as consumed (not an escape)."""
        for sub in ast.walk(call):
            if isinstance(sub, ast.Name):
                self._recognized.add(id(sub))

    def _is_stm_get(self, node: ast.Call, target: tuple | None) -> bool:
        """Disambiguate ``conn.get(...)`` from ``dict.get(...)``."""
        if target is not None and target[0] == "conn":
            return True
        if not node.args:
            # bare .get() on a parameter — only STM if other STM ops exist
            return target is not None and target[0] == "param" and (
                target[1] in self.summary.conn_params
            )
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, int):
            return True
        if isinstance(first, ast.Name) and first.id in _WILDCARDS:
            return True
        if isinstance(first, ast.Attribute) and first.attr in _WILDCARDS:
            return True
        return any(kw.arg in ("block", "timeout") for kw in node.keywords)

    def _handle_call(self, node: ast.Call, path: _Path) -> None:
        func = node.func
        # -- wall-clock sleep sites (STM506) -------------------------------
        time_mods, sleep_names = self.sleep_aliases
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "sleep"
            and isinstance(func.value, ast.Name)
            and func.value.id in time_mods
        ) or (isinstance(func, ast.Name) and func.id in sleep_names):
            self.summary.sleeps.append(node.lineno)
            return

        # -- spawn edges ---------------------------------------------------
        spawn_target = None
        if isinstance(func, ast.Attribute) and func.attr in _SPAWNERS:
            if node.args and isinstance(node.args[0], ast.Name):
                spawn_target = node.args[0].id
        elif (
            (isinstance(func, ast.Name) and func.id == "Thread")
            or (isinstance(func, ast.Attribute) and func.attr == "Thread")
        ):
            for kw in node.keywords:
                if kw.arg == "target" and isinstance(kw.value, ast.Name):
                    spawn_target = kw.value.id
        if spawn_target is not None:
            self.summary.spawns.append((spawn_target, node.lineno))
            self._recognize_call_names(node)
            return

        # -- creates outside assignments still register the channel --------
        if isinstance(func, ast.Attribute) and func.attr in _CHANNEL_MAKERS:
            key, cap = self._channel_key_of_call(node)
            if key is not None:
                self._record_create(key, cap, node.lineno)

        # -- lookup(..., wait=True) is a blocking STM call -----------------
        if isinstance(func, ast.Attribute) and func.attr in _CHANNEL_FINDERS:
            if any(
                kw.arg == "wait"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            ):
                self._op("lookup_wait", ("conn", "<lookup>"), node.lineno, path)

        # -- connection-method ops -----------------------------------------
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            var, meth = func.value.id, func.attr
            target = self._target_for(var)
            emitted = False
            block_kw = True
            for kw in node.keywords:
                if kw.arg == "block" and isinstance(kw.value, ast.Constant):
                    block_kw = bool(kw.value.value)
                if kw.arg == "timeout" and not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is None
                ):
                    block_kw = False
            if meth in _GET and self._is_stm_get(node, target):
                emitted |= self._emit(target, "get", node, path, block_kw)
            if meth in _CONSUME:
                emitted |= self._emit(target, "consume", node, path, True)
            if meth in _PUT and (
                (target is not None and target[0] != "param")
                or len(node.args) >= 2
            ):
                ts_lit, ts_par = self._timestamp_of(node.args[0]) if node.args else (None, None)
                emitted |= self._emit(
                    target, "put", node, path, block_kw, ts_lit, ts_par
                )
            if meth in _DETACH:
                emitted |= self._emit(target, "detach", node, path, True)
            if emitted:
                self._recognized.add(id(func.value))
            return

        # -- spd_* free-function forms --------------------------------------
        if isinstance(func, ast.Name) and node.args and isinstance(
            node.args[0], ast.Name
        ):
            spd = func.id
            kinds = []
            if spd in _GET:
                kinds.append("get")
            if spd in _CONSUME:
                kinds.append("consume")
            if spd in _PUT:
                kinds.append("put")
            if spd in _DETACH:
                kinds.append("detach")
            if spd in _ATTACH_INPUT | _ATTACH_OUTPUT:
                direction = "input" if spd in _ATTACH_INPUT else "output"
                channel = self._resolve_channel_expr(node.args[0])
                if isinstance(channel, tuple) and channel[0] == "param":
                    self.summary.param_attaches.append(
                        _ParamAttach(channel[1], direction, node.lineno, None)
                    )
                self._recognized.add(id(node.args[0]))
                return
            if kinds and spd.startswith("spd_"):
                target = self._target_for(node.args[0].id)
                ts_lit = ts_par = None
                if "put" in kinds and len(node.args) > 1:
                    ts_lit, ts_par = self._timestamp_of(node.args[1])
                for kind in kinds:
                    self._emit(target, kind, node, path, True,
                               ts_lit if kind == "put" else None,
                               ts_par if kind == "put" else None)
                self._recognized.add(id(node.args[0]))
                return

        # -- plain calls: record forwarded conn/chan/int args ---------------
        if isinstance(func, ast.Name):
            site = _CallSite(func.id, node.lineno, path, self._current_lock())
            for pos, arg in enumerate(node.args):
                val = self._arg_value(arg)
                if val is not None:
                    site.args[pos] = val
                    if isinstance(arg, ast.Name):
                        self._recognized.add(id(arg))
            self.summary.calls.append(site)

    def _emit(self, target: tuple | None, kind: str, node: ast.Call,
              path: _Path, blocking: bool, ts_literal: int | None = None,
              ts_param: int | None = None) -> bool:
        if target is None:
            return False
        if target[0] == "outer":
            _tag, walker, var = target
            walker.summary.ops.append(
                _Op(kind, ("conn", var), node.lineno, path, blocking,
                    ts_literal, ts_param, self._current_lock())
            )
            return True
        self._op(kind, target, node.lineno, path, blocking, ts_literal, ts_param)
        return True

    def _timestamp_of(self, expr: ast.expr) -> tuple[int | None, int | None]:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int) and not (
            isinstance(expr.value, bool)
        ):
            return expr.value, None
        if isinstance(expr, ast.Name) and expr.id in self.summary.params:
            return None, self.summary.params.index(expr.id)
        return None, None

    def _arg_value(self, arg: ast.expr) -> tuple | None:
        if isinstance(arg, ast.Name):
            if arg.id in self.summary.conns:
                return ("conn", arg.id)
            if arg.id in self.summary.channels:
                return ("chan", self.summary.channels[arg.id])
            if arg.id in self.summary.params:
                return ("fwd", self.summary.params.index(arg.id))
            value = self.consts.get(arg.id)
            if isinstance(value, int) and not isinstance(value, bool):
                return ("int", value)
            return None
        if isinstance(arg, ast.Constant) and isinstance(arg.value, int) and not (
            isinstance(arg.value, bool)
        ):
            return ("int", arg.value)
        return None


# ----------------------------------------------------------------------
# program-level extraction
# ----------------------------------------------------------------------
def _sleep_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names the module binds to wall-clock sleeping: module aliases of
    ``time`` (so ``t.sleep`` is caught under ``import time as t``) and
    bare names bound by ``from time import sleep [as s]``.  ``asyncio``
    imports never land here, so ``await asyncio.sleep`` stays legal."""
    time_mods: set[str] = set()
    sleep_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    time_mods.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    sleep_names.add(alias.asname or "sleep")
    return time_mods, sleep_names


def _module_constants(tree: ast.Module) -> dict[str, object]:
    consts: dict[str, object] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Constant):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    consts[target.id] = stmt.value.value
    return consts


def _collect_scopes(src: SourceFile) -> list[tuple[_FuncWalker, _Summary]]:
    """Walk every scope of one file: module body, functions, methods,
    nested closures (each closure walker keeps a reference to its parent
    so ops on captured connections are attributed to the defining scope)."""
    consts = _module_constants(src.tree)
    sleep_aliases = _sleep_aliases(src.tree)
    out: list[tuple[_FuncWalker, _Summary]] = []

    def walk(body: list[ast.stmt], qualname: str, params: list[str],
             line: int, parent: _FuncWalker | None,
             is_async: bool = False) -> None:
        summary = _Summary(
            module=src.display, file=src.display, qualname=qualname,
            name=qualname.rsplit(".", 1)[-1], line=line, params=params,
            is_async=is_async,
        )
        walker = _FuncWalker(body, summary, consts, parent, sleep_aliases)
        out.append((walker, summary))
        for nbody, nqual, nparams, nline, nasync in walker.nested:
            walk(nbody, nqual, nparams, nline, walker, nasync)

    # The module-body walker recurses into every (nested) function it sees,
    # so plain functions are fully covered; class bodies are opaque to it
    # (walk_stmt skips ClassDef), hence methods are collected separately.
    walk(src.tree.body, "<module>", [], 1, None)
    stack: list[tuple[ast.ClassDef, str]] = [
        (n, "") for n in src.tree.body if isinstance(n, ast.ClassDef)
    ]
    while stack:
        cls, prefix = stack.pop()
        for child in cls.body:
            if isinstance(child, ast.ClassDef):
                stack.append((child, f"{prefix}{cls.name}."))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk(
                    child.body,
                    f"{prefix}{cls.name}.{child.name}",
                    [a.arg for a in child.args.args],
                    child.lineno,
                    None,
                    isinstance(child, ast.AsyncFunctionDef),
                )
    return out


@dataclass
class _Program:
    summaries: list[_Summary]
    walkers: dict[str, _FuncWalker]                 # summary id -> walker
    by_name: dict[str, list[_Summary]] = field(default_factory=dict)

    def resolve(self, name: str, caller: _Summary) -> list[_Summary]:
        """Callee candidates: same-scope siblings, then same module, then
        any module (merging candidates keeps the analysis conservative)."""
        candidates = self.by_name.get(name, [])
        if not candidates:
            return []
        prefix = f"{caller.qualname}.{name}"
        scoped = [
            s for s in candidates
            if s.module == caller.module and s.qualname == prefix
        ]
        if scoped:
            return scoped
        local = [s for s in candidates if s.module == caller.module]
        return local or candidates


def _link(sources: list[SourceFile]) -> _Program:
    summaries: list[_Summary] = []
    walkers: dict[str, _FuncWalker] = {}
    for src in sources:
        for walker, summary in _collect_scopes(src):
            summaries.append(summary)
            walkers[summary.id] = walker
    prog = _Program(summaries, walkers)
    for s in summaries:
        if s.name != "<module>":
            prog.by_name.setdefault(s.name, []).append(s)
    return prog


# ----------------------------------------------------------------------
# interprocedural effects
# ----------------------------------------------------------------------
@dataclass
class _ParamEffects:
    kinds: set[str] = field(default_factory=set)
    blocking_get: bool = False
    blocking_put: bool = False
    #: (this conn param puts with ts taken from param j)
    ts_params: set[int] = field(default_factory=set)


class _Effects:
    """Memoized transitive effect summaries over the call graph."""

    def __init__(self, prog: _Program) -> None:
        self.prog = prog
        self._params: dict[str, dict[int, _ParamEffects]] = {}
        self._blocking: dict[str, bool] = {}

    # .. per-parameter effects ............................................

    def params(
        self, fn: _Summary, _stack: frozenset | None = None
    ) -> dict[int, _ParamEffects]:
        _stack = _stack or frozenset()
        if fn.id in self._params:
            return self._params[fn.id]
        if fn.id in _stack:
            return {}
        stack = _stack | {fn.id}
        out: dict[int, _ParamEffects] = {}

        def eff(idx: int) -> _ParamEffects:
            return out.setdefault(idx, _ParamEffects())

        for op in fn.ops:
            if op.target[0] != "param":
                continue
            e = eff(op.target[1])
            e.kinds.add(op.kind)
            if op.kind == "get" and op.blocking:
                e.blocking_get = True
            if op.kind == "put" and op.blocking:
                e.blocking_put = True
            if op.kind == "put" and op.ts_param is not None:
                e.ts_params.add(op.ts_param)
        for call in fn.calls:
            for callee in self.prog.resolve(call.callee, fn):
                sub = self.params(callee, stack)
                for pos, val in call.args.items():
                    if val[0] != "fwd" or pos not in sub:
                        continue
                    e = eff(val[1])
                    e.kinds |= sub[pos].kinds
                    e.blocking_get |= sub[pos].blocking_get
                    e.blocking_put |= sub[pos].blocking_put
        self._params[fn.id] = out
        return out

    # .. does calling fn (possibly) block on STM? .........................

    def blocking_stm(
        self, fn: _Summary, _stack: frozenset | None = None
    ) -> tuple[bool, str]:
        _stack = _stack or frozenset()
        if fn.id in self._blocking:
            return self._blocking[fn.id], ""
        if fn.id in _stack:
            return False, ""
        stack = _stack | {fn.id}
        verdict, why = False, ""
        for op in fn.ops:
            if op.kind == "lookup_wait":
                verdict, why = True, f"lookup(wait=True) at {fn.file}:{op.line}"
                break
            if op.kind in ("get", "put") and op.blocking:
                verdict, why = True, f"blocking {op.kind} at {fn.file}:{op.line}"
                break
        if not verdict:
            for call in fn.calls:
                for callee in self.prog.resolve(call.callee, fn):
                    sub, _w = self.blocking_stm(callee, stack)
                    if sub:
                        verdict = True
                        why = f"'{callee.label}' blocks on STM"
                        break
                if verdict:
                    break
        self._blocking[fn.id] = verdict
        return verdict, why

    # .. the op-kind closure of one local connection ......................

    def conn_kinds(
        self, fn: _Summary, var: str
    ) -> tuple[set[str], bool, bool, list[str], dict[str, int]]:
        """(kinds, blocking_get, blocking_put, resolved helper labels,
        first-op lines) for connection ``var``, following the calls it is
        passed into.  The declaration's ``escaped`` flag already covers
        untrackable uses."""
        kinds: set[str] = set()
        blocking_get = blocking_put = False
        helpers: list[str] = []
        lines: dict[str, int] = {}
        for op in fn.ops:
            if op.target == ("conn", var):
                kinds.add(op.kind)
                lines.setdefault(op.kind, op.line)
                if op.kind == "get" and op.blocking:
                    blocking_get = True
                if op.kind == "put" and op.blocking:
                    blocking_put = True
        decl = fn.conns.get(var)
        for call in fn.calls:
            positions = [p for p, v in call.args.items() if v == ("conn", var)]
            if not positions:
                continue
            callees = self.prog.resolve(call.callee, fn)
            if not callees:
                if decl is not None:
                    decl.escaped = True  # passed somewhere we cannot see
                continue
            helpers.append(call.callee)
            for callee in callees:
                sub = self.params(callee)
                for pos in positions:
                    e = sub.get(pos)
                    if e is None:
                        continue
                    kinds |= e.kinds
                    blocking_get |= e.blocking_get
                    blocking_put |= e.blocking_put
        return kinds, blocking_get, blocking_put, helpers, lines


# ----------------------------------------------------------------------
# the exported graph
# ----------------------------------------------------------------------
@dataclass
class ThreadNode:
    id: str
    label: str
    file: str
    line: int
    spawned_by: list[str] = field(default_factory=list)


@dataclass
class ChannelNode:
    key: str
    name: str | None
    capacity: int | None                # statically known bound, else None
    bounded: bool
    file: str | None = None
    line: int | None = None


@dataclass
class GraphEdge:
    kind: str                           # "put" | "get" | "spawn"
    src: str
    dst: str
    file: str
    line: int
    blocking: bool = True
    #: for put edges: whether the connection demonstrably puts (an output
    #: attach with no visible put is topology-only, not a producer).
    puts: bool = True


@dataclass
class ChannelGraph:
    """The whole-program topology: threads, channels, dataflow + spawns."""

    threads: dict[str, ThreadNode] = field(default_factory=dict)
    channels: dict[str, ChannelNode] = field(default_factory=dict)
    edges: list[GraphEdge] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)

    # .. views ............................................................

    def producers(self, key: str) -> list[GraphEdge]:
        return [e for e in self.edges if e.kind == "put" and e.dst == key]

    def consumers(self, key: str) -> list[GraphEdge]:
        return [e for e in self.edges if e.kind == "get" and e.src == key]

    def to_json(self) -> dict:
        return {
            "threads": [
                {
                    "id": t.id,
                    "label": t.label,
                    "file": t.file,
                    "line": t.line,
                    "spawned_by": sorted(t.spawned_by),
                }
                for t in sorted(self.threads.values(), key=lambda t: t.id)
            ],
            "channels": [
                {
                    "key": c.key,
                    "name": c.name,
                    "capacity": c.capacity,
                    "bounded": c.bounded,
                    "created_at": f"{c.file}:{c.line}" if c.file else None,
                }
                for c in sorted(self.channels.values(), key=lambda c: c.key)
            ],
            "edges": [
                {
                    "kind": e.kind,
                    "src": e.src,
                    "dst": e.dst,
                    "at": f"{e.file}:{e.line}",
                    "blocking": e.blocking,
                }
                for e in sorted(
                    self.edges, key=lambda e: (e.kind, e.src, e.dst, e.line)
                )
            ],
            "pipeline": self.main_chain(),
        }

    def to_dot(self) -> str:
        lines = [
            "digraph stm {",
            "  rankdir=LR;",
            '  node [fontname="Helvetica"];',
        ]
        for t in sorted(self.threads.values(), key=lambda t: t.id):
            lines.append(
                f'  "{t.id}" [shape=box style=rounded '
                f'label="{t.label}\\n{t.file}:{t.line}"];'
            )
        for c in sorted(self.channels.values(), key=lambda c: c.key):
            cap = f" cap={c.capacity}" if c.bounded else ""
            label = (c.name or c.key) + cap
            lines.append(f'  "{c.key}" [shape=ellipse label="{label}"];')
        styles = {"put": "solid", "get": "solid", "spawn": "dashed"}
        for e in sorted(self.edges, key=lambda e: (e.kind, e.src, e.dst, e.line)):
            lines.append(
                f'  "{e.src}" -> "{e.dst}" '
                f'[label="{e.kind}" style={styles[e.kind]}];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"

    def main_chain(self) -> list[str]:
        """The longest thread-to-thread dataflow path (a linear pipeline's
        stage order) — the static seed for placement search."""
        succ: dict[str, set[str]] = {t: set() for t in self.threads}
        for c in self.channels:
            for pe in self.producers(c):
                for ge in self.consumers(c):
                    if pe.src != ge.dst:
                        succ.setdefault(pe.src, set()).add(ge.dst)
        best: list[str] = []

        def dfs(node: str, path: list[str]) -> None:
            nonlocal best
            if len(path) > len(best):
                best = list(path)
            for nxt in sorted(succ.get(node, ())):
                if nxt not in path:
                    path.append(nxt)
                    dfs(nxt, path)
                    path.pop()

        for start in sorted(succ):
            dfs(start, [start])
        return [self.threads[t].label if t in self.threads else t for t in best]

    def placement_model(self, compute_us: float = 1000.0,
                        output_bytes: int = 1024):
        """Seed :mod:`repro.runtime.placement` with the extracted chain.

        Stage compute/size default to placeholders — the topology is the
        static contribution; calibrate costs from ``repro.obs`` metrics.
        """
        from repro.runtime.placement import PipelineModel, Stage

        chain = self.main_chain()
        if not chain:
            raise ValueError("no thread-to-thread dataflow chain extracted")
        stages = tuple(
            Stage(
                name,
                compute_us=compute_us,
                output_bytes=output_bytes if i < len(chain) - 1 else 0,
            )
            for i, name in enumerate(chain)
        )
        return PipelineModel(stages=stages)


# ----------------------------------------------------------------------
# thread attribution
# ----------------------------------------------------------------------
@dataclass
class _AttachInst:
    """One attach site attributed to one thread root."""

    thread: str
    channel: str
    direction: str
    file: str
    line: int
    blocking: bool                      # any blocking get (input) / put (output)
    has_put: bool = False


def _thread_roots(prog: _Program) -> tuple[dict[str, _Summary], dict[str, list[str]]]:
    """Spawn targets plus uncalled entries that reach STM activity."""
    spawned: dict[str, _Summary] = {}
    spawned_by: dict[str, list[str]] = {}
    called: set[str] = set()
    for fn in prog.summaries:
        for call in fn.calls:
            for callee in prog.resolve(call.callee, fn):
                called.add(callee.id)
        for target, _line in fn.spawns:
            for callee in prog.resolve(target, fn):
                spawned[callee.id] = callee
                spawned_by.setdefault(callee.id, []).append(fn.id)

    def touches_stm(fn: _Summary, seen: set[str]) -> bool:
        if fn.id in seen:
            return False
        seen.add(fn.id)
        if fn.conns or fn.ops or fn.spawns or fn.param_attaches or fn.creates:
            return True
        return any(
            touches_stm(callee, seen)
            for call in fn.calls
            for callee in prog.resolve(call.callee, fn)
        )

    roots = dict(spawned)
    for fn in prog.summaries:
        if fn.id in called or fn.id in spawned:
            continue
        if touches_stm(fn, set()):
            roots[fn.id] = fn
    return roots, spawned_by


def _attribute(prog: _Program, effects: _Effects,
               roots: dict[str, _Summary]) -> list[_AttachInst]:
    """Collect every root's transitive attach sites (with channel binding
    of parameter channels instantiated per call site)."""
    out: list[_AttachInst] = []
    for root_id, root in roots.items():

        def visit(fn: _Summary, env: dict[int, str], seen: set, root_id=root_id) -> None:
            key = (fn.id, tuple(sorted(env.items())))
            if key in seen or len(seen) > 400:
                return
            seen.add(key)
            for var, decl in fn.conns.items():
                channel = decl.channel
                if isinstance(channel, tuple) and channel and channel[0] == "param":
                    channel = env.get(channel[1])
                if not isinstance(channel, str):
                    channel = f"?{fn.file}:{decl.line}"
                kinds, bget, bput, _helpers, lines = effects.conn_kinds(fn, var)
                # anchor the edge at the first put/get (falling back to the
                # attach site) so graph-level findings point at the op.
                op = "put" if decl.direction == "output" else "get"
                out.append(
                    _AttachInst(
                        root_id, channel, decl.direction, fn.file,
                        lines.get(op, decl.line),
                        bget if decl.direction == "input" else bput,
                        has_put="put" in kinds,
                    )
                )
            for pa in fn.param_attaches:
                if pa.conn_var is not None and pa.conn_var in fn.conns:
                    continue  # already handled through the conn decl above
                channel = env.get(pa.param)
                if channel is None:
                    continue
                out.append(
                    _AttachInst(
                        root_id, channel, pa.direction, fn.file, pa.line,
                        True, has_put=True,
                    )
                )
            for call in fn.calls:
                for callee in prog.resolve(call.callee, fn):
                    child_env: dict[int, str] = {}
                    for pos, val in call.args.items():
                        if val[0] == "chan":
                            child_env[pos] = val[1]
                        elif val[0] == "fwd" and val[1] in env:
                            child_env[pos] = env[val[1]]
                    visit(callee, child_env, seen)

        visit(root, {}, set())
    return out


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
def _merge_channels(prog: _Program) -> dict[str, ChannelNode]:
    channels: dict[str, ChannelNode] = {}
    for fn in prog.summaries:
        for key, cap in fn.creates.items():
            node = channels.get(key)
            line = fn.create_lines.get(key)
            if node is None:
                channels[key] = ChannelNode(
                    key=key, name=key,
                    capacity=cap[1] if cap[0] == "bounded" else None,
                    bounded=cap[0] == "bounded",
                    file=fn.file, line=line,
                )
            elif cap[0] == "bounded" and not node.bounded:
                node.bounded = True
                node.capacity = cap[1]
    return channels


def _rule_501_wait_cycles(graph: ChannelGraph) -> list[Finding]:
    """Bounded cycles in the thread-level dataflow digraph.

    An acyclic network of STM channels cannot deadlock on put/get alone;
    a *cycle* whose consumers all block on get and in which at least one
    channel is bounded with a blocking put can (the bounded-buffer
    variant of Kahn-network artificial deadlock: every thread on the
    cycle ends up waiting for a peer that is itself waiting).  A plain
    producer->consumer pair is NOT a cycle in this digraph — the full/
    empty waits of one channel are complementary and never hold at once.
    """
    # thread -> thread dataflow edges, labeled by channel and put site
    flow: dict[str, list[tuple[str, str, GraphEdge]]] = {}
    for pe in graph.edges:
        if pe.kind != "put":
            continue
        for ge in graph.consumers(pe.dst):
            if not ge.blocking:
                continue  # a non-blocking getter breaks the wait chain
            if ge.dst == pe.src:
                continue  # self-loops are protolint territory
            flow.setdefault(pe.src, []).append((ge.dst, pe.dst, pe))

    findings: list[Finding] = []
    seen_sites: set[tuple[str, int]] = set()
    for start, outs in sorted(flow.items()):
        for first_dst, first_chan, pe in outs:
            chan = graph.channels.get(first_chan)
            if chan is None or not chan.bounded or not pe.blocking:
                continue  # the cycle must contain a bounded blocking put
            # DFS: is `start` reachable from first_dst through flow edges?
            path = _flow_path(flow, first_dst, start, limit=20)
            if path is None:
                continue
            site = (pe.file, pe.line)
            if site in seen_sites:
                continue
            seen_sites.add(site)
            cycle = [start, *path]  # path runs first_dst .. start
            labels = " -> ".join(
                graph.threads[t].label if t in graph.threads else t
                for t in cycle
            )
            findings.append(
                Finding(
                    "STM501",
                    pe.file,
                    pe.line,
                    f"blocking put to bounded channel "
                    f"'{chan.name or chan.key}' (capacity {chan.capacity}) "
                    f"lies on a put->get wait cycle {labels}: potential "
                    "deadlock once the bounded channel fills",
                )
            )
    return findings


def _flow_path(
    flow: dict[str, list[tuple[str, str, GraphEdge]]],
    src: str,
    dst: str,
    limit: int,
) -> list[str] | None:
    """Simple path src -> dst in the dataflow digraph (BFS, bounded)."""
    if src == dst:
        return [src]
    frontier: list[list[str]] = [[src]]
    visited = {src}
    while frontier:
        next_frontier: list[list[str]] = []
        for path in frontier:
            if len(path) > limit:
                continue
            for nxt, _chan, _pe in flow.get(path[-1], ()):
                if nxt == dst:
                    return path + [nxt]
                if nxt not in visited:
                    visited.add(nxt)
                    next_frontier.append(path + [nxt])
        frontier = next_frontier
    return None


def _rule_502_starvation(prog: _Program, effects: _Effects) -> list[Finding]:
    findings: list[Finding] = []
    for fn in prog.summaries:
        for var, decl in fn.conns.items():
            if decl.direction != "input":
                continue
            kinds, _bg, _bp, helpers, _lines = effects.conn_kinds(fn, var)
            if decl.escaped:
                continue
            if not helpers:
                continue  # purely local: protolint's STM201/205 own this
            if kinds & {"consume", "detach"}:
                continue
            via = ", ".join(f"'{h}'" for h in dict.fromkeys(helpers))
            findings.append(
                Finding(
                    "STM502",
                    fn.file,
                    decl.line,
                    f"input connection '{var}' is handed to {via} but no "
                    "reachable code ever consumes or detaches it: the "
                    "connection pins the channel's GC horizon forever",
                )
            )
    return findings


def _rule_503_orphans(graph: ChannelGraph) -> list[Finding]:
    findings: list[Finding] = []
    for key, chan in sorted(graph.channels.items()):
        if chan.name is None:
            continue  # unnamed/synthetic channels: identity is heuristic
        producers = [e for e in graph.producers(key) if e.puts]
        if not producers or graph.consumers(key):
            continue
        first = min(producers, key=lambda e: (e.file, e.line))
        findings.append(
            Finding(
                "STM503",
                first.file,
                first.line,
                f"channel '{chan.name}' is produced here but no scanned "
                "code ever attaches an input connection: items accumulate "
                "with nowhere to go (orphan producer)",
            )
        )
    return findings


def _rule_504_ts_regression(prog: _Program, effects: _Effects) -> list[Finding]:
    findings: list[Finding] = []
    for fn in prog.summaries:
        walker = prog.walkers[fn.id]
        # literal-timestamp put events per connection: direct puts plus
        # helper calls whose summary puts conn-param with ts-param.
        events: dict[str, list[tuple[int, _Path, int, bool]]] = {}
        for op in fn.ops:
            if op.kind == "put" and op.target[0] == "conn" and op.ts_literal is not None:
                events.setdefault(op.target[1], []).append(
                    (op.line, op.path, op.ts_literal, False)
                )
        for call in fn.calls:
            conn_positions = {
                pos: val[1] for pos, val in call.args.items() if val[0] == "conn"
            }
            int_positions = {
                pos: val[1] for pos, val in call.args.items() if val[0] == "int"
            }
            if not conn_positions or not int_positions:
                continue
            for callee in prog.resolve(call.callee, fn):
                params = effects.params(callee)
                for pos, var in conn_positions.items():
                    e = params.get(pos)
                    if e is None or "put" not in e.kinds:
                        continue
                    for ts_param in e.ts_params:
                        if ts_param in int_positions:
                            events.setdefault(var, []).append(
                                (call.line, call.path,
                                 int_positions[ts_param], True)
                            )
        for var, evs in events.items():
            evs.sort(key=lambda e: e[0])
            reported = False
            for i, (l1, p1, ts1, via1) in enumerate(evs):
                for l2, p2, ts2, via2 in evs[i + 1:]:
                    if not (via1 or via2):
                        continue  # direct/direct pairs are STM204's domain
                    if ts2 < ts1 and walker.strictly_precedes(p1, p2):
                        findings.append(
                            Finding(
                                "STM504",
                                fn.file,
                                l2,
                                f"timestamp {ts2} flowing into '{var}.put' "
                                f"through a helper call is older than the "
                                f"timestamp {ts1} put at line {l1}: "
                                "cross-procedure timestamp regression",
                            )
                        )
                        reported = True
                        break
                if reported:
                    break
    return findings


def _rule_505_blocking_under_lock(prog: _Program, effects: _Effects) -> list[Finding]:
    findings: list[Finding] = []
    for fn in prog.summaries:
        for op in fn.ops:
            if op.lock is None:
                continue
            if op.kind == "lookup_wait" or (
                op.kind in ("get", "put") and op.blocking
            ):
                what = "lookup(wait=True)" if op.kind == "lookup_wait" else (
                    f"blocking {op.kind}"
                )
                findings.append(
                    Finding(
                        "STM505",
                        fn.file,
                        op.line,
                        f"{what} while holding lock '{op.lock}': the STM "
                        "call can park the thread (or the event loop) with "
                        "the lock held",
                    )
                )
        for call in fn.calls:
            if call.lock is None:
                continue
            for callee in prog.resolve(call.callee, fn):
                blocks, why = effects.blocking_stm(callee)
                if blocks:
                    findings.append(
                        Finding(
                            "STM505",
                            fn.file,
                            call.line,
                            f"call to '{call.callee}' while holding lock "
                            f"'{call.lock}' reaches a blocking STM "
                            f"operation ({why or 'transitively'})",
                        )
                    )
                    break
    return findings


def _rule_506_wall_clock_sleeps(prog: _Program) -> list[Finding]:
    """Wall-clock sleeps on STM kernel paths.

    A sleep is flagged when its own function performs STM channel
    operations, or when it sits in a helper that an STM-active function
    calls (transitively): in both shapes the sleeping scope is pacing
    channel traffic with the wall clock.  On the asyncio runtime a
    ``time.sleep`` anywhere on such a path parks the event loop — every
    task in the space stops, including the GC daemon.  Deliberate
    settle sleeps (benchmarks, teardown) carry ``# stm-ok: STM506``.
    """

    def stm_active(fn: _Summary) -> bool:
        return bool(fn.ops or fn.conns or fn.conn_params or fn.param_attaches)

    findings: list[Finding] = []
    flagged: set[tuple[str, int]] = set()

    def flag(fn: _Summary, line: int, via: str | None) -> None:
        site = (fn.file, line)
        if site in flagged:
            return
        flagged.add(site)
        consequence = (
            "under the asyncio runtime this parks the whole event loop"
            if fn.is_async
            else "on the asyncio runtime the same path parks the event loop"
        )
        origin = (
            f"in '{fn.label}', which performs STM channel operations"
            if via is None
            else f"in '{fn.label}', reached from STM-active '{via}'"
        )
        findings.append(
            Finding(
                "STM506",
                fn.file,
                line,
                f"wall-clock time.sleep {origin}: {consequence}, and on "
                "any runtime it couples channel pacing to the wall clock "
                "instead of a blocking get/put or an event",
            )
        )

    for fn in prog.summaries:
        if not stm_active(fn):
            continue
        for line in fn.sleeps:
            flag(fn, line, None)
        # helpers this STM-active function calls that sleep themselves
        stack = [(fn, frozenset({fn.id}))]
        while stack:
            cur, seen = stack.pop()
            for call in cur.calls:
                for callee in prog.resolve(call.callee, cur):
                    if callee.id in seen or stm_active(callee):
                        continue  # active callees are flagged on their own
                    for line in callee.sleeps:
                        flag(callee, line, fn.label)
                    stack.append((callee, seen | {callee.id}))
    return findings


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def extract_graph(sources: list[SourceFile]) -> ChannelGraph:
    """Extract the whole-program channel graph and run STM501-506."""
    prog = _link(sources)
    effects = _Effects(prog)
    graph = ChannelGraph()
    graph.channels = _merge_channels(prog)
    roots, spawned_by = _thread_roots(prog)

    by_id = {fn.id: fn for fn in prog.summaries}
    for root_id, root in roots.items():
        graph.threads[root_id] = ThreadNode(
            id=root_id, label=root.label, file=root.file, line=root.line,
            spawned_by=[
                by_id[s].label for s in spawned_by.get(root_id, []) if s in by_id
            ],
        )
    for fn in prog.summaries:
        for target, line in fn.spawns:
            for callee in prog.resolve(target, fn):
                src_thread = fn.id if fn.id in graph.threads else None
                graph.edges.append(
                    GraphEdge("spawn", src_thread or fn.id, callee.id,
                              fn.file, line)
                )

    for inst in _attribute(prog, effects, roots):
        if inst.channel not in graph.channels:
            graph.channels[inst.channel] = ChannelNode(
                key=inst.channel,
                name=None if inst.channel.startswith("?") else inst.channel,
                capacity=None, bounded=False,
            )
        if inst.direction == "output":
            graph.edges.append(
                GraphEdge("put", inst.thread, inst.channel, inst.file,
                          inst.line, blocking=inst.blocking and inst.has_put,
                          puts=inst.has_put)
            )
        else:
            graph.edges.append(
                GraphEdge("get", inst.channel, inst.thread, inst.file,
                          inst.line, blocking=inst.blocking)
            )

    # de-duplicate edges from multiple instantiation paths
    seen: set[tuple] = set()
    unique: list[GraphEdge] = []
    for e in graph.edges:
        k = (e.kind, e.src, e.dst, e.file, e.line)
        if k in seen:
            continue
        seen.add(k)
        unique.append(e)
    graph.edges = unique

    graph.findings.extend(_rule_501_wait_cycles(graph))
    graph.findings.extend(_rule_502_starvation(prog, effects))
    graph.findings.extend(_rule_503_orphans(graph))
    graph.findings.extend(_rule_504_ts_regression(prog, effects))
    graph.findings.extend(_rule_505_blocking_under_lock(prog, effects))
    graph.findings.extend(_rule_506_wall_clock_sleeps(prog))
    return graph


def check_channel_graph(sources: list[SourceFile]) -> list[Finding]:
    """The pass entry point: findings only (the CLI may also export)."""
    return extract_graph(sources).findings


def summarize_program(sources: list[SourceFile]) -> tuple[_Program, _Effects]:
    """Public seam for the abstract interpreter (`repro.analysis.absint`):
    the linked per-function summary program plus its memoized transitive
    effects engine, so call sites can be resolved and composed without
    re-walking the sources."""
    prog = _link(sources)
    return prog, _Effects(prog)
