"""Runtime sanitizer (``STMSAN=1``): dynamic rules STM301-303.

Off by default and free when off — the runtime asks this module for its
locks (:func:`san_lock`) and gets plain ``threading.Lock`` objects unless
the sanitizer is enabled, in which case it gets :class:`SanLock` wrappers
that maintain per-thread held-lock sets and a global lock-order graph.

What the shim checks while enabled:

* **STM301** — two lock *classes* (e.g. ``LocalChannel.lock`` vs
  ``ClfNetwork.order``) acquired in both orders by any threads over the
  run, or a thread re-acquiring a non-reentrant lock it already holds
  (recorded *and* raised, since the real lock would deadlock).
* **STM302** — a :class:`~repro.core.channel_state.ChannelKernel` mutating
  method invoked by a thread that does not hold the owning channel lock
  (installed per-channel by the runtime via :func:`guard_kernel`).
* **STM303** — a payload reclaimed by the kernel (consumed to refcount
  zero, collected below the GC horizon, or destroyed with the channel) is
  touched afterwards.  Reclaimed payloads are replaced with a
  :class:`Tombstone` carrying the reclaiming stack, and zero-copy
  ``memoryview`` payloads from the PR-1 framing path are ``release()``-d so
  every alias dies loudly.

Dynamic findings are *recorded*, not raised (except lock re-entry and
tombstone access, which would otherwise hang or corrupt): a sanitizer run
finishes the workload, then the harness asserts ``findings() == []``.

Enable with the ``STMSAN=1`` environment variable (read at import) or
programmatically with :func:`enable` before building a Cluster.
"""

from __future__ import annotations

import os
import sys
import threading
import traceback
from typing import Any

from repro.analysis import racecheck
from repro.analysis.findings import Finding
from repro.errors import StmSanError

__all__ = [
    "enabled",
    "enable",
    "disable",
    "reset",
    "findings",
    "san_lock",
    "SanLock",
    "guard_kernel",
    "Tombstone",
    "tombstone_payload",
]

_enabled = False
_meta = threading.Lock()          # guards the graph + findings (never held
                                  # while taking a SanLock)
_findings: list[Finding] = []
_seen: set[tuple[str, str, int]] = set()
_graph: dict[str, set[str]] = {}  # lock-class name -> names taken under it
_edge_site: dict[tuple[str, str], str] = {}
_tls = threading.local()

#: ChannelKernel methods that mutate channel state (guarded by STM302).
KERNEL_MUTATORS = (
    "put",
    "get",
    "consume",
    "consume_until",
    "attach_input",
    "attach_output",
    "detach",
    "collect_below",
    "destroy",
)


def enabled() -> bool:
    return _enabled


def enable() -> None:
    """Turn the sanitizer on for locks/channels created from now on."""
    global _enabled
    _enabled = True
    from repro.core import channel_state

    channel_state.set_reclaim_hook(_on_reclaim)


def disable() -> None:
    global _enabled
    _enabled = False
    from repro.core import channel_state

    channel_state.set_reclaim_hook(None)


def reset() -> None:
    """Clear accumulated findings and the lock-order graph."""
    with _meta:
        _findings.clear()
        _seen.clear()
        _graph.clear()
        _edge_site.clear()


def findings() -> list[Finding]:
    with _meta:
        return list(_findings)


def _call_site(skip_self: bool = True) -> tuple[str, int, str]:
    """(file, line, formatted-stack) of the nearest frame outside this
    module and the threading machinery."""
    frame = sys._getframe(1)
    here = __file__
    while frame is not None:
        fname = frame.f_code.co_filename
        if not (skip_self and fname == here) and "threading" not in fname:
            break
        frame = frame.f_back
    if frame is None:  # pragma: no cover - defensive
        return "<unknown>", 0, ""
    stack = "".join(traceback.format_stack(frame, limit=8))
    return frame.f_code.co_filename, frame.f_lineno, stack


def _record(rule_id: str, message: str, detail: str = "") -> None:
    file, line, stack = _call_site()
    with _meta:
        key = (rule_id, file, line)
        if key in _seen:
            return
        _seen.add(key)
        _findings.append(
            Finding(rule_id, file, line, message, detail=detail or stack)
        )


def _held() -> list["SanLock"]:
    held = getattr(_tls, "held", None)
    if held is None:
        held = _tls.held = []
    return held


def _reaches(start: str, goal: str) -> bool:
    seen: set[str] = set()
    stack = [start]
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        if node in seen:
            continue
        seen.add(node)
        stack.extend(_graph.get(node, ()))
    return False


class SanLock:
    """A non-reentrant lock that records held sets and acquisition order.

    ``name`` identifies the lock *class* (``"LocalChannel.lock"``,
    ``"AddressSpace.channels"``, ...): the order graph is built over names,
    so an inversion between any two instances of two classes is caught no
    matter which instances exhibit it.
    """

    #: _rc_vc is the race detector's published clock (repro.analysis
    #: .racecheck); living on the lock keeps its lifetime exactly right.
    __slots__ = ("name", "_raw", "_owner", "_rc_vc")

    def __init__(self, name: str) -> None:
        self.name = name
        self._raw = threading.Lock()
        self._owner: int | None = None
        self._rc_vc = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._owner == me:
            _record(
                "STM301",
                f"thread re-acquired non-reentrant lock '{self.name}' it "
                "already holds (certain deadlock)",
            )
            raise StmSanError(
                f"re-entrant acquire of non-reentrant lock '{self.name}'"
            )
        held = _held()
        if held:
            self._note_order(held)
        got = self._raw.acquire(blocking, timeout)
        if got:
            self._owner = me
            held.append(self)
            racecheck.lock_acquired(self)
        return got

    def _note_order(self, held: list["SanLock"]) -> None:
        file, line, stack = _call_site()
        site = f"{file}:{line}"
        with _meta:
            for outer in held:
                edge = (outer.name, self.name)
                if self.name in _graph.get(outer.name, ()):
                    continue  # known edge
                # inversion iff the new lock already reaches the held one
                if outer.name == self.name or _reaches(self.name, outer.name):
                    other = _edge_site.get((self.name, outer.name), "?")
                    key = ("STM301", file, line)
                    if key not in _seen:
                        _seen.add(key)
                        _findings.append(
                            Finding(
                                "STM301",
                                file,
                                line,
                                f"lock-order inversion: '{self.name}' "
                                f"acquired while holding '{outer.name}' "
                                f"here, but the opposite order was seen at "
                                f"{other}",
                                detail=stack,
                            )
                        )
                _graph.setdefault(outer.name, set()).add(self.name)
                _edge_site.setdefault(edge, site)

    def release(self) -> None:
        racecheck.lock_released(self)
        self._owner = None
        held = _held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] is self:
                del held[i]
                break
        self._raw.release()

    def locked(self) -> bool:
        return self._raw.locked()

    def held_by_current(self) -> bool:
        return self._owner == threading.get_ident()

    def __enter__(self) -> "SanLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self.locked() else "unlocked"
        return f"<SanLock {self.name!r} {state}>"


def san_lock(name: str) -> Any:
    """The runtime's lock factory: plain Lock when off, SanLock when on."""
    if _enabled:
        return SanLock(name)
    return threading.Lock()


# ---------------------------------------------------------------------------
# STM302: kernel mutations must hold the owning channel lock
# ---------------------------------------------------------------------------


#: kernel methods monitored as *reads* by the race detector (STM304).
KERNEL_READERS = ("unconsumed_min", "timestamps", "oldest", "latest")


def guard_kernel(kernel: Any, lock: Any) -> None:
    """Wrap ``kernel``'s mutating methods (per instance) so each call
    asserts the owning channel lock is held, and feed every monitored
    access to the vector-clock race detector.  No-op unless the sanitizer
    created ``lock`` (i.e. it is a SanLock)."""
    if not isinstance(lock, SanLock):
        return
    var_name = f"ChannelKernel#{getattr(kernel, 'channel_id', '?')}"
    for name in KERNEL_MUTATORS:
        method = getattr(kernel, name, None)
        if method is None:
            continue

        def guarded(*args: Any, __m=method, __n=name, **kwargs: Any) -> Any:
            if not lock.held_by_current():
                _record(
                    "STM302",
                    f"ChannelKernel.{__n} called without holding "
                    f"'{lock.name}'",
                )
            if racecheck.enabled():
                file, line, _stack = _call_site()
                racecheck.on_write(
                    kernel, var_name, f"{__n} at {file}:{line}"
                )
            return __m(*args, **kwargs)

        setattr(kernel, name, guarded)
    for name in KERNEL_READERS:
        method = getattr(kernel, name, None)
        if method is None:
            continue

        def reading(*args: Any, __m=method, __n=name, **kwargs: Any) -> Any:
            if racecheck.enabled():
                file, line, _stack = _call_site()
                racecheck.on_read(
                    kernel, var_name, f"{__n} at {file}:{line}"
                )
            return __m(*args, **kwargs)

        setattr(kernel, name, reading)


# ---------------------------------------------------------------------------
# STM303: tombstone reclaimed payloads, poison zero-copy views
# ---------------------------------------------------------------------------


class Tombstone:
    """Replaces a reclaimed payload; any touch raises :class:`StmSanError`
    carrying the stack that reclaimed the item."""

    __slots__ = ("channel_id", "timestamp", "reclaim_stack")

    def __init__(self, channel_id: int, timestamp: int, stack: str) -> None:
        object.__setattr__(self, "channel_id", channel_id)
        object.__setattr__(self, "timestamp", timestamp)
        object.__setattr__(self, "reclaim_stack", stack)

    def _die(self, how: str) -> Any:
        message = (
            f"use-after-reclaim: payload of item ts={self.timestamp} in "
            f"channel {self.channel_id} was {how} after the kernel "
            "reclaimed it"
        )
        _record("STM303", message, detail=self.reclaim_stack)
        raise StmSanError(message, stack=self.reclaim_stack)

    def __getattr__(self, name: str) -> Any:
        return self._die(f"read (attribute {name!r})")

    def __getitem__(self, key: Any) -> Any:
        return self._die("indexed")

    def __iter__(self) -> Any:
        return self._die("iterated")

    def __len__(self) -> int:
        return self._die("len()-ed")

    def __bytes__(self) -> bytes:
        return self._die("serialized")

    def __reduce__(self) -> Any:  # pickling a tombstone = shipping freed data
        return self._die("pickled")

    def __repr__(self) -> str:
        return (
            f"<Tombstone channel={self.channel_id} ts={self.timestamp} "
            "(reclaimed payload)>"
        )


def tombstone_payload(channel_id: int, timestamp: int, payload: Any) -> Any:
    """Poison one reclaimed payload: release zero-copy views, return the
    tombstone that should replace the stored payload."""
    stack = "".join(traceback.format_stack(limit=10))
    if isinstance(payload, memoryview):
        try:
            payload.release()
        except BufferError:  # still exported somewhere: leave it alive
            pass
    return Tombstone(channel_id, timestamp, stack)


def _on_reclaim(kernel: Any, timestamp: int, record: Any) -> None:
    """Reclaim hook installed into repro.core.channel_state on enable()."""
    if not _enabled:
        return
    # Never poison an item some connection still has open: the reader holds
    # a legitimate reference (e.g. a get reply in flight) by design.
    for view in getattr(kernel, "inputs", {}).values():
        if timestamp in getattr(view, "open_ts", ()):
            return
    record.payload = tombstone_payload(
        getattr(kernel, "channel_id", -1), timestamp, record.payload
    )


_stmsan_env = os.environ.get("STMSAN", "")
if _stmsan_env not in ("", "0"):
    enable()
    # STMSAN=race additionally turns on the vector-clock race detector.
    if _stmsan_env == "race":
        racecheck.enable()
