"""Fig. 11 — STM bandwidths for image-size payloads (230 400 bytes).

    "In column A, a producer on one address space does repeated puts, and a
    consumer on another address space does repeated gets and consumes.
    Because of the synchronization between puts and gets and consumes, the
    data is moved in bursts, one item at a time.  The bandwidths are thus
    much less than the raw CLF bandwidths ... although they are still
    comfortably above the basic camera image rate of 6.912 MB/s.  In column
    B, there are two producers on two different address spaces and two
    consumers on another address space.  In this case, one consumer can be
    involved in data movement while the other consumer is involved in
    synchronization with its producer ... these total bandwidths approach
    the raw CLF bandwidths."

Both columns run on the simulated cluster (Memory Channel) by default; the
``measured`` mode reruns them on the real thread runtime of this host.
"""

from __future__ import annotations

import time

from repro.bench.tables import TableResult
from repro.core import STM_OLDEST
from repro.runtime import Cluster
from repro.sim import SimStampede
from repro.stm import STM
from repro.transport.media import (
    CAMERA_BANDWIDTH_MBPS,
    IMAGE_BYTES,
    MEMORY_CHANNEL,
    Medium,
)

__all__ = [
    "stm_bandwidth_table",
    "simulate_stm_bandwidth_mbps",
    "measure_stm_bandwidth_mbps",
]


def stm_bandwidth_table(
    mode: str = "simulated", items: int = 30, medium: Medium = MEMORY_CHANNEL
) -> TableResult:
    """Regenerate Fig. 11 (columns A and B) plus reference rows."""
    table = TableResult(
        title="Fig. 11: STM bandwidths for image payloads (230400 B)",
        row_label="configuration",
        col_label="",
        columns=["MB/s"],
        unit="MB/s",
        notes=(
            f"camera rate reference: {CAMERA_BANDWIDTH_MBPS:.3f} MB/s; "
            f"raw CLF (acked per image): "
            f"{medium.acked_stream_bandwidth_mbps(IMAGE_BYTES, IMAGE_BYTES):.1f} MB/s"
        ),
    )
    if mode == "simulated":
        a = simulate_stm_bandwidth_mbps(1, medium, items)
        b = simulate_stm_bandwidth_mbps(2, medium, items)
    elif mode == "measured":
        from repro.transport.serialization import frame_stats

        frame_stats.reset()
        a = measure_stm_bandwidth_mbps(1, items)
        b = measure_stm_bandwidth_mbps(2, items)
        snap = frame_stats.snapshot()
        if snap["frames_encoded"]:
            per_byte = (
                snap["payload_bytes_copied"] / snap["payload_bytes_framed"]
            )
            table.notes += (
                f"; payload framing: {snap['frames_encoded']} images "
                f"out-of-band, {per_byte:.2f} memcpys per payload byte"
            )
    else:
        raise ValueError(f"unknown mode {mode!r}")
    table.rows["A: 1 producer / 1 consumer"] = {"MB/s": a}
    table.rows["B: 2 producers / 2 consumers"] = {"MB/s": b}
    return table


def simulate_stm_bandwidth_mbps(
    n_pairs: int, medium: Medium = MEMORY_CHANNEL, items: int = 30
) -> float:
    """Aggregate bandwidth of ``n_pairs`` producer/consumer pairs.

    Producers live on distinct spaces; all consumers (and the channels)
    share one space, exactly as in the paper's column B.
    """
    n_spaces = n_pairs + 1
    consumer_space = n_pairs
    sim = SimStampede(n_spaces=n_spaces, inter_node=medium)
    channels = [sim.create_channel(home=consumer_space) for _ in range(n_pairs)]

    def make_producer(chan):
        def producer(t):
            out = yield from t.attach_output(chan)
            for i in range(items):
                t.set_virtual_time(i)
                yield from t.put(out, i, nbytes=IMAGE_BYTES)
        return producer

    def make_consumer(chan):
        def consumer(t):
            inp = yield from t.attach_input(chan)
            for _ in range(items):
                _p, ts, _s = yield from t.get(inp, STM_OLDEST)
                yield from t.consume(inp, ts)
        return consumer

    for pair, chan in enumerate(channels):
        sim.spawn(make_producer(chan), space=pair, name=f"prod{pair}")
        sim.spawn(make_consumer(chan), space=consumer_space, name=f"cons{pair}")
    sim.run()
    return n_pairs * items * IMAGE_BYTES / sim.now


def measure_stm_bandwidth_mbps(n_pairs: int, items: int = 20) -> float:
    """The same experiment on the real thread runtime of this host."""
    n_spaces = n_pairs + 1
    consumer_space = n_pairs
    with Cluster(n_spaces=n_spaces, gc_period=None) as cluster:
        creator = cluster.space(0).adopt_current_thread(virtual_time=0)
        stm0 = STM(cluster.space(0))
        for pair in range(n_pairs):
            stm0.create_channel(f"fig11.{pair}", home=consumer_space)
        frame = bytes(IMAGE_BYTES)

        def producer(pair: int) -> None:
            from repro.runtime import current_thread

            out = (
                STM(cluster.space(pair)).lookup(f"fig11.{pair}").attach_output()
            )
            me = current_thread()
            for i in range(items):
                me.set_virtual_time(i)
                out.put(i, frame)
            out.detach()

        def consumer(pair: int) -> None:
            inp = (
                STM(cluster.space(consumer_space))
                .lookup(f"fig11.{pair}")
                .attach_input()
            )
            for _ in range(items):
                item = inp.get(STM_OLDEST)
                inp.consume(item.timestamp)
            inp.detach()

        t0 = time.perf_counter()
        threads = []
        for pair in range(n_pairs):
            threads.append(
                cluster.space(consumer_space).spawn(
                    consumer, (pair,), virtual_time=0
                )
            )
            threads.append(
                cluster.space(pair).spawn(producer, (pair,), virtual_time=0)
            )
        for thread in threads:
            thread.join(120.0)
        elapsed = time.perf_counter() - t0
        creator.exit()
    return n_pairs * items * IMAGE_BYTES / elapsed / 1e6
