"""Overhead of the observability layer on the STM hot path (the PR-5 gate).

Three measurements:

1. the local put/get/consume micro-op cycle with tracing **disabled** — the
   default state every production run sees;
2. the same cycle with tracing **enabled** (per-thread ring buffers live);
3. the raw cost of one disabled-mode guard — the ``events.recorder``
   module-global read each instrumentation point performs before bailing.

The acceptance criterion ("<5% put/get overhead with STMOBS unset")
compares the disabled path against the pre-instrumentation baseline.  That
baseline no longer exists in the tree, so the check bounds the added cost
analytically: a disabled cycle pays exactly :data:`GUARDS_PER_CYCLE`
guard reads, so the overhead fraction is::

    guards_per_cycle * guard_ns  /  cycle_disabled_ns

which overestimates (the guard microbenchmark includes its own loop
bookkeeping).  ``python -m repro.bench.obs_overhead --check`` exits
non-zero when the bound exceeds 5% — CI runs exactly that.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.obs import events as obs_events
from repro.runtime import Cluster
from repro.stm import STM

__all__ = [
    "GUARDS_PER_CYCLE",
    "measure_cycle_us",
    "measure_guard_ns",
    "run",
    "check",
]

#: Disabled-mode guard reads on one put + get + consume + set_virtual_time
#: cycle: one per facade op (3) and one in set_virtual_time.
GUARDS_PER_CYCLE = 4


def measure_cycle_us(items: int = 2000, *, payload_size: int = 128) -> float:
    """Microseconds per local put/get/consume cycle (single address space).

    Mirrors ``benchmarks/test_micro_ops.py::test_facade_local_put_get_consume``
    — the workload the <5% criterion is defined over.  Tracing state is
    whatever the caller armed (or didn't).
    """
    with Cluster(n_spaces=1, gc_period=None) as cluster:
        me = cluster.space(0).adopt_current_thread(virtual_time=0)
        try:
            stm = STM(cluster.space(0))
            chan = stm.create_channel("obs-overhead")
            with chan.attach_output() as out, chan.attach_input() as inp:
                payload = bytes(payload_size)
                for i in range(min(100, items)):  # warmup
                    me.set_virtual_time(i)
                    out.put(i, payload)
                    inp.get(i)
                    inp.consume(i)
                base = min(100, items)
                t0 = time.perf_counter()
                for i in range(base, base + items):
                    me.set_virtual_time(i)
                    out.put(i, payload)
                    inp.get(i)
                    inp.consume(i)
                elapsed = time.perf_counter() - t0
        finally:
            me.exit()
    return elapsed / items * 1e6


def measure_guard_ns(reps: int = 200_000) -> float:
    """Nanoseconds per disabled-mode instrumentation guard.

    Times the exact disabled fast path — read the ``events.recorder``
    module global, compare against None — including the measuring loop's
    own bookkeeping, so the figure is an overestimate.
    """
    t0 = time.perf_counter_ns()
    for _ in range(reps):
        if obs_events.recorder is not None:  # pragma: no cover - never armed
            raise RuntimeError("guard benchmark must run disarmed")
    return (time.perf_counter_ns() - t0) / reps


def run(items: int = 2000, guard_reps: int = 200_000) -> dict:
    """Measure disabled/enabled cycles and the guard bound; return a report."""
    was_armed = obs_events.disable()
    try:
        guard_ns = measure_guard_ns(guard_reps)
        # Min-of-2 per mode: one scheduler hiccup inflating a single run
        # must not trip the enabled-mode sanity limit on a loaded host.
        disabled_us = min(measure_cycle_us(items) for _ in range(2))
        obs_events.enable()
        enabled_us = min(measure_cycle_us(items) for _ in range(2))
    finally:
        obs_events.disable()
        if was_armed is not None:  # pragma: no cover - caller had it armed
            obs_events.enable()
    disabled_ns = disabled_us * 1000.0
    return {
        "items": items,
        "cycle_disabled_us": disabled_us,
        "cycle_enabled_us": enabled_us,
        "guard_ns": guard_ns,
        "guards_per_cycle": GUARDS_PER_CYCLE,
        "disabled_overhead_bound_pct":
            100.0 * GUARDS_PER_CYCLE * guard_ns / disabled_ns,
        "enabled_overhead_pct":
            100.0 * (enabled_us - disabled_us) / disabled_us,
    }


def check(report: dict, limit_pct: float = 5.0) -> list[str]:
    """The CI gate; [] means the overhead criteria hold."""
    problems: list[str] = []
    bound = report["disabled_overhead_bound_pct"]
    if bound >= limit_pct:
        problems.append(
            f"disabled-mode overhead bound {bound:.3f}% >= {limit_pct}% "
            f"({report['guards_per_cycle']} guards x "
            f"{report['guard_ns']:.1f} ns on a "
            f"{report['cycle_disabled_us']:.1f} us cycle)"
        )
    # Sanity, not a hard perf gate: armed tracing must not wreck the cycle.
    # Nominal is well under 100% on idle hardware, but the measurement
    # swings tens of points with host load; the limit leaves that headroom
    # while still catching a real regression (a lock or an allocation per
    # ring append would blow far past it).
    if report["enabled_overhead_pct"] > 150.0:
        problems.append(
            f"enabled-mode tracing wrecks the cycle "
            f"({report['enabled_overhead_pct']:.1f}%, limit 150%)"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.obs_overhead",
        description="Measure observability overhead on the STM micro-op cycle.",
    )
    parser.add_argument("--items", type=int, default=2000)
    parser.add_argument("--guard-reps", type=int, default=200_000)
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the <5%% disabled bound holds")
    parser.add_argument("--limit-pct", type=float, default=5.0)
    args = parser.parse_args(argv)
    report = run(items=args.items, guard_reps=args.guard_reps)
    print(json.dumps(report, indent=2))
    if args.check:
        problems = check(report, args.limit_pct)
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"OK: disabled-mode bound "
            f"{report['disabled_overhead_bound_pct']:.3f}% < "
            f"{args.limit_pct}%",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
