"""Command-line harness: regenerate every paper table and ablation.

Usage::

    python -m repro.bench                 # simulated tables (the paper repro)
    python -m repro.bench --mode both     # + measured rows on this host
    python -m repro.bench --only fig10    # one experiment
    python -m repro.bench --out tables.txt

This is the scriptable twin of ``pytest benchmarks/ -s``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.bench.ablations import (
    channel_depth_ablation,
    gc_cadence_ablation,
    gc_strategy_ablation,
    placement_ablation,
    push_ablation,
    skipping_ablation,
)
from repro.bench.fig08 import clf_latency_table
from repro.bench.pipeline_sim import pipeline_placement_table
from repro.bench.fig09 import clf_bandwidth_table
from repro.bench.fig10 import stm_latency_table
from repro.bench.fig11 import stm_bandwidth_table
from repro.bench.pr1_hotpath import pr1_hotpath_table
from repro.bench.pr6_procs import pr6_procs_table
from repro.bench.pr8_aio import pr8_aio_table
from repro.bench.pr10_telemetry import pr10_telemetry_table
from repro.bench.tables import TableResult

__all__ = ["EXPERIMENTS", "run", "main"]

#: experiment id -> (description, callable(mode) -> list[TableResult])
EXPERIMENTS: dict[str, tuple[str, Callable[[str], list[TableResult]]]] = {
    "fig08": (
        "Fig. 8: CLF one-way latencies",
        lambda mode: _modes(clf_latency_table, mode),
    ),
    "fig09": (
        "Fig. 9: CLF bandwidths",
        lambda mode: _modes(clf_bandwidth_table, mode),
    ),
    "fig10": (
        "Fig. 10: STM one-way latencies",
        lambda mode: _modes(stm_latency_table, mode),
    ),
    "fig11": (
        "Fig. 11: STM bandwidths (image payloads)",
        lambda mode: _modes(stm_bandwidth_table, mode),
    ),
    "ablation-gc": (
        "Ablation: GC strategies (§6)",
        lambda mode: [gc_strategy_ablation()],
    ),
    "ablation-placement": (
        "Ablation: channel placement (§6/§9)",
        lambda mode: [placement_ablation()],
    ),
    "ablation-depth": (
        "Ablation: bounded channel depth (§4.1)",
        lambda mode: [channel_depth_ablation()],
    ),
    "ablation-skipping": (
        "Ablation: LATEST_UNSEEN skipping (§3)",
        lambda mode: [skipping_ablation()],
    ),
    "ablation-gc-cadence": (
        "Ablation: GC cadence (§4.2)",
        lambda mode: [gc_cadence_ablation()],
    ),
    "ablation-push": (
        "Ablation: eager push vs pull (§9; measured on this host)",
        lambda mode: [push_ablation()],
    ),
    "pipeline-placement": (
        "Kiosk pipeline latency per placement (sim vs scheduler model)",
        lambda mode: [pipeline_placement_table()],
    ),
    "pr1-hotpath": (
        "PR-1 hot-path counters: wakeups/put, GC epoch, payload memcpys",
        lambda mode: [pr1_hotpath_table(mode)],
    ),
    "pr6-procs": (
        "PR-6 process runtime: GIL escape, shm ring memcpys, kiosk fleet",
        lambda mode: [pr6_procs_table(mode)],
    ),
    "pr8-aio": (
        "PR-8 asyncio scale: 10k-connection GC minima, per-waiter wakeups",
        lambda mode: [pr8_aio_table(mode)],
    ),
    "pr10-telemetry": (
        "PR-10 telemetry plane: harvest cost, scrape latency, overhead",
        lambda mode: [pr10_telemetry_table(mode)],
    ),
}


def _modes(driver: Callable[[str], TableResult], mode: str) -> list[TableResult]:
    if mode == "both":
        return [driver("simulated"), driver("measured")]
    return [driver(mode)]


def run(only: list[str] | None = None, mode: str = "simulated") -> list[TableResult]:
    """Run the selected experiments; returns the tables in order."""
    ids = only or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiment id(s) {unknown}; choose from "
            f"{sorted(EXPERIMENTS)}"
        )
    tables: list[TableResult] = []
    for exp_id in ids:
        _desc, fn = EXPERIMENTS[exp_id]
        tables.extend(fn(mode))
    return tables


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's performance tables.",
    )
    parser.add_argument(
        "--mode",
        choices=["simulated", "measured", "both"],
        default="simulated",
        help="simulated = 1998-cluster reproduction; measured = this host",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (default: all of {sorted(EXPERIMENTS)})",
    )
    parser.add_argument("--out", help="also write the tables to this file")
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for exp_id, (desc, _fn) in EXPERIMENTS.items():
            print(f"{exp_id:22s} {desc}")
        return 0

    tables = run(args.only, args.mode)
    text = "\n\n".join(table.render() for table in tables)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"\n[written to {args.out}]", file=sys.stderr)
    return 0
