"""Table rendering and experiment bookkeeping for the benchmark harness.

Every driver returns a :class:`TableResult`: the regenerated rows, the
paper's published cells where the scan preserves them (``paper`` maps the
same row/column keys), and a ``render()`` that prints both side by side so
EXPERIMENTS.md can be written straight from bench output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["TableResult"]


@dataclass
class TableResult:
    """One regenerated paper table."""

    title: str
    row_label: str
    col_label: str
    columns: list[Any]
    #: measured/modeled values: row key -> {column key -> value}.
    rows: dict[Any, dict[Any, float]] = field(default_factory=dict)
    #: the paper's published cells (sparse — the scan lost some).
    paper: dict[Any, dict[Any, float]] = field(default_factory=dict)
    unit: str = ""
    notes: str = ""

    def cell(self, row: Any, col: Any) -> float:
        return self.rows[row][col]

    def render(self, width: int = 10) -> str:
        """Human-readable table with paper reference cells in parentheses."""
        header = [
            str(self.row_label).ljust(34),
            *(str(c).rjust(width) for c in self.columns),
        ]
        lines = [self.title, "=" * len(self.title), "  ".join(header)]
        for row_key, cells in self.rows.items():
            out = [str(row_key).ljust(34)]
            for col in self.columns:
                value = cells.get(col)
                text = f"{value:.2f}" if value is not None else "-"
                ref = self.paper.get(row_key, {}).get(col)
                if ref is not None:
                    text += f" ({ref:g})"
                out.append(text.rjust(width))
            lines.append("  ".join(out))
        if self.unit:
            lines.append(f"[{self.unit}; values in parentheses are the "
                         f"paper's published cells]")
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": {str(k): dict(v) for k, v in self.rows.items()},
            "paper": {str(k): dict(v) for k, v in self.paper.items()},
            "unit": self.unit,
        }
