"""Fig. 8 — minimum one-way CLF latencies per medium and packet size.

    "Minimum one-way end to end latencies achievable under CLF are shown
    in Table 8, for various packet sizes up to 8152 Bytes, the MTU."

Two modes:

* ``simulated`` (default): evaluates the calibrated medium models — this is
  the 1998-hardware reproduction.  The paper's surviving cells (the 8-byte
  column: 17/19/227 µs) are carried for comparison.
* ``measured``: pings real bytes through the in-process
  :class:`~repro.transport.clf.ClfNetwork` between two dispatcher threads
  and reports minimum one-way (half round-trip) times on *this* host —
  software overhead without the 1998 wire.
"""

from __future__ import annotations

import time

from repro.bench.tables import TableResult
from repro.transport.clf import ClfNetwork
from repro.transport.media import MEDIA, Medium

__all__ = ["PACKET_SIZES", "clf_latency_table", "measure_clf_roundtrip_us"]

#: the packet-size columns of Figs. 8-10.
PACKET_SIZES = [8, 128, 1024, 4096, 8152]

#: published cells preserved by the scan (8-byte column of Fig. 8).
_PAPER = {
    "shm": {8: 17.0},
    "memory_channel": {8: 19.0},
    "udp": {8: 227.0},
}


def clf_latency_table(
    mode: str = "simulated", sizes: list[int] | None = None
) -> TableResult:
    """Regenerate Fig. 8; ``mode`` is ``simulated`` or ``measured``."""
    sizes = sizes or PACKET_SIZES
    table = TableResult(
        title="Fig. 8: minimum one-way CLF latencies",
        row_label="communication medium",
        col_label="packet size (bytes)",
        columns=sizes,
        unit="microseconds",
    )
    if mode == "simulated":
        for key, medium in MEDIA.items():
            table.rows[medium.name] = {
                s: medium.one_way_latency_us(s) for s in sizes
            }
            table.paper[medium.name] = dict(_PAPER[key])
        table.notes = (
            "simulated: calibrated medium models (see repro.transport.media)"
        )
    elif mode == "measured":
        row = {s: measure_clf_roundtrip_us(s) / 2.0 for s in sizes}
        table.rows["in-process queues (this host)"] = row
        table.notes = "measured on this host's in-process CLF; no 1998 wire"
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return table


def measure_clf_roundtrip_us(size: int, reps: int = 200) -> float:
    """Minimum round-trip time of a ``size``-byte CLF ping on this host."""
    import threading

    network = ClfNetwork.create(2)
    a, b = network.endpoint(0), network.endpoint(1)
    payload = bytes(size)

    def echo() -> None:
        for _ in range(reps):
            src, data = b.recv()
            b.send(src, data)

    thread = threading.Thread(target=echo, daemon=True)
    thread.start()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter_ns()
        a.send(1, payload)
        a.recv()
        dt = (time.perf_counter_ns() - t0) / 1000.0
        if dt < best:
            best = dt
    thread.join(timeout=5.0)
    network.close()
    return best
