"""PR-8 asyncio scale: sparse-connection GC minima and per-waiter wakeups.

The coroutine runtime makes 10k concurrent STM clients realistic — an OS
thread per camera is fantasy, an asyncio task per camera is a Tuesday —
so this module re-measures the two hot paths whose cost is a function of
*connection count* at that scale:

* **sparse unconsumed_min** — one kernel, 10k input connections, each
  consumed up to a different staggered watermark (the sparsest possible
  minima distribution).  We time ``unconsumed_min()`` in the steady state
  (every per-view cache warm: a dict-min over the inputs) and under churn
  (one view's watermark moves per call, forcing exactly one skip-scan
  recompute), reading ``min_scan_steps`` to prove the cached scheme does
  no per-item work for the 9 999 untouched connections.

* **per-waiter wakeups** — N clients, each with its *own* input
  connection, park in ``get`` for N distinct timestamps on one channel;
  a producer satisfies them one put at a time.  ``waiters_woken / puts``
  must stay 1.0 (targeted wakeups) at 10k tasks, and the per-put cost —
  put + wakeup dispatch through the event loop — must stay flat from
  256 to 10k.  A 256-OS-thread run of the same program gives the thread
  runtime's reference point (10k OS threads is not attempted).

Run: ``python -m repro.bench --only pr8-aio`` or
``python -m repro.bench.pr8_aio [out.json]``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any

from repro.bench.tables import TableResult

__all__ = [
    "measure_sparse_unconsumed_min",
    "measure_aio_wakeups",
    "measure_thread_wakeups",
    "aio_snapshot",
    "pr8_aio_table",
]

_OUT = 0  # the producer connection id in the kernel-level measurement


# ----------------------------------------------------------------------
# 1. unconsumed_min over 10k sparse connections
# ----------------------------------------------------------------------
def measure_sparse_unconsumed_min(
    n_conns: int = 10_000,
    n_items: int = 64,
    steady_calls: int = 200,
    churn_calls: int = 200,
) -> dict[str, Any]:
    """Kernel-level ``unconsumed_min`` cost with sparse per-view minima."""
    from repro.core.channel_state import ChannelKernel

    kernel = ChannelKernel(1)
    kernel.attach_output(_OUT)
    for ts in range(n_items):
        kernel.put(_OUT, ts, b"", 0)
    conns = range(1, n_conns + 1)
    for i, conn in enumerate(conns):
        kernel.attach_input(conn, visibility=0)
        # stagger the watermarks so every view's minimum differs
        kernel.consume_until(conn, i % (n_items - 1))

    kernel.unconsumed_min()  # warm every view cache
    base_steps = kernel.min_scan_steps
    t0 = time.perf_counter()
    for _ in range(steady_calls):
        kernel.unconsumed_min()
    steady_s = time.perf_counter() - t0
    steady_steps = kernel.min_scan_steps - base_steps

    # churn: move one view's watermark per call — exactly one recompute
    churn_conns = list(conns)[:churn_calls]
    base_steps = kernel.min_scan_steps
    t0 = time.perf_counter()
    for i, conn in enumerate(churn_conns):
        kernel.consume_until(conn, i % (n_items - 1) + 1)
        kernel.unconsumed_min()
    churn_s = time.perf_counter() - t0
    churn_steps = kernel.min_scan_steps - base_steps

    return {
        "n_connections": n_conns,
        "n_items": n_items,
        "steady_call_us": steady_s / steady_calls * 1e6,
        "steady_scan_steps_per_call": steady_steps / steady_calls,
        "churn_call_us": churn_s / len(churn_conns) * 1e6,
        "churn_scan_steps_per_call": churn_steps / len(churn_conns),
    }


# ----------------------------------------------------------------------
# 2. per-waiter wakeups: one asyncio task (and connection) per waiter
# ----------------------------------------------------------------------
def measure_aio_wakeups(n_tasks: int = 10_000) -> dict[str, Any]:
    """N parked gets on N connections, satisfied one put at a time."""
    from repro.runtime.aio import AioCluster
    from repro.stm.aio import AioSTM

    async def main() -> dict[str, Any]:
        async with AioCluster(n_spaces=1, gc_period=None) as cluster:
            space = cluster.space(0)
            me = space.adopt_current_task(virtual_time=0)
            stm = AioSTM(space)
            chan = await stm.create_channel("pr8.wakeups")
            out = await chan.attach_output()
            local = space._channel(chan.channel_id)

            async def consumer(ts: int) -> None:
                inp = await (await stm.lookup("pr8.wakeups")).attach_input()
                await inp.get(ts)
                await inp.consume(ts)
                await inp.detach()

            tasks = [
                space.spawn_task(consumer, (ts,), virtual_time=0,
                                 name=f"pr8-c{ts}")
                for ts in range(n_tasks)
            ]
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if len(local.get_waiters) >= n_tasks:
                    break
                await asyncio.sleep(0.01)
            woken_base = local.waiters_woken

            t0 = time.perf_counter()
            for ts in range(n_tasks):
                # consumers attach via an awaited lookup chain the
                # static pass cannot resolve
                await out.put(ts, b"x", refcount=1)  # stm-ok: STM503
            elapsed = time.perf_counter() - t0
            for task in tasks:
                await space.ajoin(task, timeout=60.0)
            woken = local.waiters_woken - woken_base
            await out.detach()
            me.exit()
        return {
            "runtime": "aio",
            "parked_getters": n_tasks,
            "puts": n_tasks,
            "waiters_woken": woken,
            "woken_per_put": woken / n_tasks,
            "put_us": elapsed / n_tasks * 1e6,
        }

    return asyncio.run(main())


def measure_thread_wakeups(n_threads: int = 256) -> dict[str, Any]:
    """The same program on the thread runtime (one OS thread per waiter)."""
    from repro.runtime import Cluster
    from repro.stm import STM

    with Cluster(n_spaces=1, gc_period=None) as cluster:
        space = cluster.space(0)
        me = space.adopt_current_thread(virtual_time=0)
        stm = STM(space)
        chan = stm.create_channel("pr8.twakeups")
        out = chan.attach_output()
        local = space._channel(chan.channel_id)
        started = threading.Barrier(n_threads + 1)

        def consumer(ts: int) -> None:
            inp = STM(space).lookup("pr8.twakeups").attach_input()
            started.wait()
            inp.get(ts)
            inp.consume(ts)
            inp.detach()

        threads = [
            space.spawn(consumer, (ts,), virtual_time=0)
            for ts in range(n_threads)
        ]
        started.wait()
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            with local.lock:
                parked = len(local.get_waiters)
            if parked >= n_threads:
                break
            time.sleep(0.005)  # stm-ok: STM506 -- polling for parked waiters
        woken_base = local.waiters_woken

        t0 = time.perf_counter()
        for ts in range(n_threads):
            out.put(ts, b"x", refcount=1)
        elapsed = time.perf_counter() - t0
        for t in threads:
            t.join(60.0)
        woken = local.waiters_woken - woken_base
        out.detach()
        me.exit()
    return {
        "runtime": "threads",
        "parked_getters": n_threads,
        "puts": n_threads,
        "waiters_woken": woken,
        "woken_per_put": woken / n_threads,
        "put_us": elapsed / n_threads * 1e6,
    }


# ----------------------------------------------------------------------
# snapshot + table
# ----------------------------------------------------------------------
def aio_snapshot(out_path: str | None = None) -> dict[str, Any]:
    """Run all measurements; optionally write them to ``out_path``."""
    snapshot = {
        "sparse_unconsumed_min": measure_sparse_unconsumed_min(),
        "wakeups": [
            measure_thread_wakeups(256),
            measure_aio_wakeups(256),
            measure_aio_wakeups(10_000),
        ],
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(snapshot, fh, indent=2)
            fh.write("\n")
    return snapshot


def pr8_aio_table(mode: str = "measured") -> TableResult:
    """The snapshot as a render-able table (for ``python -m repro.bench``)."""
    snap = aio_snapshot()
    sparse = snap["sparse_unconsumed_min"]
    table = TableResult(
        title="PR-8 asyncio scale (this host)",
        row_label="metric",
        col_label="",
        columns=["value"],
        unit="(mixed)",
        notes=(
            f"unconsumed_min: {sparse['n_connections']} sparse input "
            f"connections; wakeups: one connection per parked getter"
        ),
    )
    table.rows["unconsumed_min steady (us)"] = {"value": sparse["steady_call_us"]}
    table.rows["unconsumed_min churn (us)"] = {"value": sparse["churn_call_us"]}
    table.rows["churn scan steps/call"] = {
        "value": sparse["churn_scan_steps_per_call"]
    }
    for row in snap["wakeups"]:
        key = f"{row['runtime']}@{row['parked_getters']}"
        table.rows[f"woken/put {key}"] = {"value": row["woken_per_put"]}
        table.rows[f"put+wakeup us {key}"] = {"value": row["put_us"]}
    return table


if __name__ == "__main__":  # pragma: no cover - manual driver
    import sys

    out = sys.argv[1] if len(sys.argv) > 1 else None
    print(json.dumps(aio_snapshot(out), indent=2))
