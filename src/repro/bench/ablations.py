"""Ablation studies for the design choices of paper §6 (and §9 future work).

Each driver isolates one design axis on the simulated cluster (fast and
deterministic) and returns a :class:`TableResult`:

* :func:`gc_strategy_ablation` — §6 "Garbage Collection": eager reference
  counting vs. reachability (global-minimum) vs. the paper's hybrid.
* :func:`placement_ablation` — §6 "Connections to Channels" / §9: channel
  co-location as the mechanism behind connection hints ("use information
  about the current connections to a channel to preemptively send data
  towards consumers").
* :func:`channel_depth_ablation` — §4.1 bounded channels: how capacity
  trades producer stalls against item staleness.
* :func:`skipping_ablation` — §3: STM_LATEST_UNSEEN's transparent skipping
  vs. strict in-order consumption when the consumer can't keep up.
* :func:`gc_cadence_ablation` — §4.2: GC recomputation period vs. peak
  buffered data and GC traffic.
"""

from __future__ import annotations

from repro.bench.tables import TableResult
from repro.core import INFINITY, STM_LATEST_UNSEEN, STM_OLDEST
from repro.sim import SimStampede
from repro.transport.media import IMAGE_BYTES, MEMORY_CHANNEL, Medium

__all__ = [
    "gc_strategy_ablation",
    "placement_ablation",
    "channel_depth_ablation",
    "skipping_ablation",
    "gc_cadence_ablation",
    "push_ablation",
]

_FRAME_US = 33_333.0  # 30 fps


# ---------------------------------------------------------------------------
def gc_strategy_ablation(
    items: int = 120, consumers: int = 3, gc_period_us: float = 100_000.0
) -> TableResult:
    """Eager refcount vs. reachability GC vs. hybrid (§6).

    A producer puts ``items`` frames; ``consumers`` threads each get+consume
    every frame.  With declared reference counts an item dies at its last
    consume; with unknown counts it waits for the periodic reachability
    daemon.  The table reports peak channel occupancy and which algorithm
    reclaimed how much.
    """
    table = TableResult(
        title="Ablation: GC strategy (paper §6)",
        row_label="strategy",
        col_label="",
        columns=["peak_items", "collected_refcount", "collected_reachability"],
        unit="items",
    )
    for strategy in ("refcount", "reachability", "hybrid"):
        sim = SimStampede(n_spaces=2)
        chan = sim.create_channel(home=1)
        peak = {"items": 0}

        def refcount_for(i: int, *, strategy=strategy) -> int:
            if strategy == "refcount":
                return consumers
            if strategy == "hybrid":
                return consumers if i % 2 == 0 else -1
            return -1

        def producer(t, *, chan=chan, peak=peak, refcount_for=refcount_for):
            out = yield from t.attach_output(chan)
            for i in range(items):
                t.set_virtual_time(i)
                yield from t.put(
                    out, i, nbytes=1024, refcount=refcount_for(i)
                )
                peak["items"] = max(peak["items"], len(chan.kernel))
                yield from t.delay(1_000.0)

        def consumer(t, *, chan=chan):
            inp = yield from t.attach_input(chan)
            t.set_virtual_time(INFINITY)
            for _ in range(items):
                _p, ts, _s = yield from t.get(inp, STM_OLDEST)
                yield from t.consume(inp, ts)

        sim.spawn(producer, space=0)
        for c in range(consumers):
            sim.spawn(consumer, space=1, name=f"cons{c}")
        if strategy != "refcount":
            sim.start_gc_daemon(gc_period_us)
        sim.run(until_us=items * 1_000.0 * 4 + 1_000_000.0)
        reach = chan.kernel.total_collected - chan.kernel.total_refcount_collected
        table.rows[strategy] = {
            "peak_items": float(peak["items"]),
            "collected_refcount": float(chan.kernel.total_refcount_collected),
            "collected_reachability": float(reach),
        }
    table.notes = (
        "refcount: eager reclamation at last consume; reachability: periodic "
        "global-minimum daemon; hybrid (the paper's design): refcounted "
        "items die eagerly, unknown-count items fall back to the daemon"
    )
    return table


# ---------------------------------------------------------------------------
def placement_ablation(size: int = IMAGE_BYTES, items: int = 30) -> TableResult:
    """Channel placement: home at producer, consumer, or a third space (§6/§9).

    Homing the channel at the consumer is the static equivalent of the
    paper's planned "preemptively send data towards consumers" optimization:
    the put pushes the payload all the way, and the get is a local copy.
    """
    table = TableResult(
        title="Ablation: channel placement (connection hints, §6/§9)",
        row_label="channel home",
        col_label="",
        columns=["latency_us", "bandwidth_mbps"],
    )
    placements = {
        "consumer space (data pushed early)": 1,
        "producer space (data pulled on get)": 0,
        "third space (two hops)": 2,
    }
    for label, home in placements.items():
        sim = SimStampede(n_spaces=3, inter_node=MEMORY_CHANNEL)
        chan = sim.create_channel(home=home)

        def producer(t, *, chan=chan):
            out = yield from t.attach_output(chan)
            for i in range(items):
                t.set_virtual_time(i)
                yield from t.put(out, i, nbytes=size)

        def consumer(t, *, chan=chan):
            inp = yield from t.attach_input(chan)
            for _ in range(items):
                _p, ts, _s = yield from t.get(inp, STM_OLDEST)
                yield from t.consume(inp, ts)

        sim.spawn(producer, space=0)
        sim.spawn(consumer, space=1)
        sim.run()
        table.rows[label] = {
            "latency_us": sim.now / items,
            "bandwidth_mbps": items * size / sim.now,
        }
    return table


# ---------------------------------------------------------------------------
def channel_depth_ablation(
    depths: list[int | None] | None = None, items: int = 60
) -> TableResult:
    """Bounded channel capacity sweep (§4.1).

    The producer is paced at 30 fps; the consumer takes 1.6 frame times per
    item, so it falls behind.  Small capacities throttle the producer
    (blocking puts); large ones buffer more but deliver staler data.
    """
    depths = depths if depths is not None else [1, 2, 4, 8, 16, None]
    table = TableResult(
        title="Ablation: bounded channel depth (§4.1)",
        row_label="capacity",
        col_label="",
        columns=["throughput_fps", "producer_block_us", "mean_staleness_frames"],
    )
    for depth in depths:
        sim = SimStampede(n_spaces=2)
        chan = sim.create_channel(home=1, capacity=depth)
        blocked = {"us": 0.0}
        staleness: list[float] = []
        produced = {"ts": -1}

        def producer(t, *, chan=chan, blocked=blocked, produced=produced):
            out = yield from t.attach_output(chan)
            for i in range(items):
                yield from t.delay(_FRAME_US)
                t.set_virtual_time(i)
                t0 = t.now
                yield from t.put(out, i, nbytes=IMAGE_BYTES)
                blocked["us"] += max(
                    t.now - t0 - 5_000.0, 0.0
                )  # anything beyond transfer+sync is capacity stall
                produced["ts"] = i

        def consumer(t, *, chan=chan, produced=produced, staleness=staleness):
            inp = yield from t.attach_input(chan)
            t.set_virtual_time(INFINITY)
            for _ in range(items):
                _p, ts, _s = yield from t.get(inp, STM_OLDEST)
                staleness.append(max(produced["ts"] - ts, 0))
                yield from t.delay(1.6 * _FRAME_US)  # slow analysis stage
                yield from t.consume(inp, ts)

        sim.spawn(producer, space=0)
        sim.spawn(consumer, space=1)
        sim.start_gc_daemon(2 * _FRAME_US)
        sim.run(until_us=items * _FRAME_US * 4)
        label = "unbounded" if depth is None else str(depth)
        table.rows[label] = {
            "throughput_fps": len(staleness) / (sim.now / 1e6),
            "producer_block_us": blocked["us"] / items,
            "mean_staleness_frames": (
                sum(staleness) / len(staleness) if staleness else 0.0
            ),
        }
    return table


# ---------------------------------------------------------------------------
def skipping_ablation(items: int = 90) -> TableResult:
    """STM_LATEST_UNSEEN vs. strict STM_OLDEST for a slow consumer (§3).

    Producer at 30 fps; consumer needs 2.5 frame times per item.  The
    skipping consumer stays fresh by dropping stale frames (and uses
    ``consume_until`` so GC reclaims what it skips); the strict consumer
    processes everything but falls unboundedly behind — exactly the paper's
    motivation for wildcard gets.
    """
    table = TableResult(
        title="Ablation: LATEST_UNSEEN skipping vs strict consumption (§3)",
        row_label="consumer policy",
        col_label="",
        columns=["processed", "skipped", "mean_staleness_frames",
                 "final_lag_frames"],
    )
    for policy in ("latest_unseen", "strict_oldest"):
        sim = SimStampede(n_spaces=2)
        chan = sim.create_channel(home=1)
        produced = {"ts": -1, "done": False}
        staleness: list[float] = []
        processed = {"n": 0, "last": -1}

        def producer(t, *, chan=chan, produced=produced):
            out = yield from t.attach_output(chan)
            for i in range(items):
                yield from t.delay(_FRAME_US)
                t.set_virtual_time(i)
                yield from t.put(out, i, nbytes=IMAGE_BYTES)
                produced["ts"] = i
            produced["done"] = True

        def consumer(
            t,
            *,
            chan=chan,
            policy=policy,
            produced=produced,
            processed=processed,
            staleness=staleness,
        ):
            inp = yield from t.attach_input(chan)
            t.set_virtual_time(INFINITY)
            while not (produced["done"] and processed["last"] >= items - 1):
                wildcard = (
                    STM_LATEST_UNSEEN if policy == "latest_unseen" else STM_OLDEST
                )
                try:
                    _p, ts, _s = yield from t.get(inp, wildcard)
                except Exception:
                    break
                staleness.append(max(produced["ts"] - ts, 0))
                yield from t.delay(2.5 * _FRAME_US)
                yield from t.consume_until(inp, ts)
                processed["n"] += 1
                processed["last"] = ts
                if ts >= items - 1:
                    break

        sim.spawn(producer, space=0)
        sim.spawn(consumer, space=1)
        sim.start_gc_daemon(2 * _FRAME_US)
        sim.run(until_us=items * _FRAME_US * 6)
        table.rows[policy] = {
            "processed": float(processed["n"]),
            "skipped": float(items - processed["n"]),
            "mean_staleness_frames": (
                sum(staleness) / len(staleness) if staleness else 0.0
            ),
            "final_lag_frames": float(items - 1 - processed["last"]),
        }
    return table


# ---------------------------------------------------------------------------
def gc_cadence_ablation(
    periods_us: list[float] | None = None, items: int = 60
) -> TableResult:
    """GC recomputation period vs. buffered data and GC traffic (§4.2)."""
    periods_us = periods_us or [
        _FRAME_US / 2, _FRAME_US, 4 * _FRAME_US, 16 * _FRAME_US
    ]
    table = TableResult(
        title="Ablation: GC cadence (§4.2)",
        row_label="GC period",
        col_label="",
        columns=["peak_buffered_mb", "gc_rounds", "mean_horizon_lag_frames"],
    )
    for period in periods_us:
        sim = SimStampede(n_spaces=2)
        chan = sim.create_channel(home=1)
        peak = {"bytes": 0}
        lags: list[float] = []

        def producer(t, *, chan=chan, peak=peak, lags=lags):
            out = yield from t.attach_output(chan)
            for i in range(items):
                yield from t.delay(_FRAME_US)
                t.set_virtual_time(i)
                yield from t.put(out, i, nbytes=IMAGE_BYTES)
                peak["bytes"] = max(peak["bytes"], chan.kernel.stored_bytes())
                lags.append(i - chan.kernel.gc_horizon)

        def consumer(t, *, chan=chan):
            inp = yield from t.attach_input(chan)
            t.set_virtual_time(INFINITY)
            for _ in range(items):
                _p, ts, _s = yield from t.get(inp, STM_OLDEST)
                yield from t.consume(inp, ts)

        sim.spawn(producer, space=0)
        sim.spawn(consumer, space=1)
        sim.start_gc_daemon(period)
        sim.run(until_us=items * _FRAME_US * 3)
        table.rows[f"{period / 1000:.1f} ms"] = {
            "peak_buffered_mb": peak["bytes"] / 1e6,
            "gc_rounds": float(len(sim.gc_reports)),
            "mean_horizon_lag_frames": sum(lags) / len(lags) if lags else 0.0,
        }
    return table


# ---------------------------------------------------------------------------
def push_ablation(items: int = 15, size: int = IMAGE_BYTES) -> TableResult:
    """Eager push vs pull on the real thread runtime (§9 future work).

    The consumer attaches before production, so with ``push=True`` every
    payload is already resident in the consumer's space when the get is
    issued — the get reply is payload-free and the copy cost was paid
    (overlapped) at put time.  Reported: per-get latency on this host.
    """
    import time as _time

    from repro.core import INFINITY as _INF
    from repro.runtime import Cluster as _Cluster
    from repro.stm import STM as _STM
    from repro.obs.metrics import OnlineStats as _Stats

    table = TableResult(
        title="Ablation: eager push vs pull (§9, measured on this host)",
        row_label="mode",
        col_label="",
        columns=["mean_get_us", "min_get_us"],
        unit="microseconds per get",
        notes=(
            f"{items} items of {size} B; consumer attached before "
            f"production, gets issued after"
        ),
    )
    for push in (False, True):
        with _Cluster(n_spaces=2, gc_period=None) as cluster:
            boot = cluster.space(0).adopt_current_thread(virtual_time=0)
            chan = _STM(cluster.space(0)).create_channel(
                f"push-{push}", home=0, push=push
            )
            import threading as _threading

            attached = _threading.Event()
            release = _threading.Event()
            stats = _Stats()

            def consumer(
                *,
                cluster=cluster,
                push=push,
                attached=attached,
                release=release,
                stats=stats,
            ):
                from repro.runtime import current_thread as _ct

                conn = _STM(cluster.space(1)).lookup(f"push-{push}").attach_input()
                _ct().set_virtual_time(_INF)
                attached.set()
                release.wait(30)
                for ts in range(items):
                    t0 = _time.perf_counter_ns()
                    conn.get(ts)
                    stats.add((_time.perf_counter_ns() - t0) / 1000.0)
                    conn.consume_until(ts)
                conn.detach()

            handle = cluster.space(1).spawn(consumer, virtual_time=0)
            attached.wait(10)
            out = chan.attach_output()
            payload = bytes(size)
            for ts in range(items):
                boot.set_virtual_time(ts)
                out.put(ts, payload)
            out.detach()
            _time.sleep(0.1)  # stm-ok: STM506 -- settle before timing the gets
            release.set()
            handle.join(60)
            boot.exit()
        table.rows["push (data sent at put time)" if push
                   else "pull (data sent at get time)"] = {
            "mean_get_us": stats.mean,
            "min_get_us": stats.min,
        }
    return table
