"""Entry point: ``python -m repro.bench`` regenerates the paper's tables."""

import sys

from repro.bench.cli import main

if __name__ == "__main__":
    sys.exit(main())
