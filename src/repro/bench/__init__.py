"""Benchmark drivers regenerating every table of the paper's §8 + ablations."""

from repro.bench.ablations import (
    channel_depth_ablation,
    gc_cadence_ablation,
    gc_strategy_ablation,
    placement_ablation,
    push_ablation,
    skipping_ablation,
)
from repro.bench.fig08 import PACKET_SIZES, clf_latency_table
from repro.bench.pipeline_sim import (
    pipeline_placement_table,
    simulate_pipeline_latency_us,
)
from repro.bench.fig09 import clf_bandwidth_table
from repro.bench.fig10 import STM_PAYLOAD_SIZES, stm_latency_table
from repro.bench.fig11 import stm_bandwidth_table
from repro.bench.tables import TableResult

__all__ = [
    "PACKET_SIZES",
    "STM_PAYLOAD_SIZES",
    "TableResult",
    "channel_depth_ablation",
    "clf_bandwidth_table",
    "clf_latency_table",
    "gc_cadence_ablation",
    "gc_strategy_ablation",
    "pipeline_placement_table",
    "placement_ablation",
    "push_ablation",
    "simulate_pipeline_latency_us",
    "skipping_ablation",
    "stm_bandwidth_table",
    "stm_latency_table",
]
