"""Fig. 10 — minimum STM one-way latencies (put → get + consume).

    "The experiment sets up a producer thread in one address space that
    puts items into a channel and a thread in another address space that
    gets and consumes these items from the channel.  We measure the total
    latency from before the put until after the consume. ... this could
    take two, four or more round-trip communications."

The channel is co-located with the consumer, as in the paper's table.
``simulated`` runs the discrete-event cluster; ``measured`` runs the real
thread runtime on this host.  Latency is reported as the steady-state cycle
time per item of the synchronous put/get/consume chain.
"""

from __future__ import annotations

import time

from repro.bench.tables import TableResult
from repro.core import STM_OLDEST
from repro.runtime import Cluster
from repro.sim import SimStampede
from repro.stm import STM
from repro.transport.media import MEMORY_CHANNEL, Medium, UDP_LAN

__all__ = ["STM_PAYLOAD_SIZES", "stm_latency_table", "simulate_stm_latency_us",
           "measure_stm_latency_us"]

#: the payload columns of Fig. 10 (8112 = max STM payload in one CLF packet).
STM_PAYLOAD_SIZES = [8, 128, 1024, 4096, 8112]

#: the paper's UDP/LAN row (the Memory Channel row did not survive the scan;
#: 2075 reconstructs the garbled "20/5" cell).
_PAPER = {
    "udp": {8: 449.0, 128: 487.0, 1024: 691.0, 4096: 1357.0, 8112: 2075.0},
    "memory_channel": {},
}

_MEDIA_ROWS: list[tuple[str, Medium]] = [
    ("memory_channel", MEMORY_CHANNEL),
    ("udp", UDP_LAN),
]


def stm_latency_table(
    mode: str = "simulated", sizes: list[int] | None = None, items: int = 50
) -> TableResult:
    """Regenerate Fig. 10 for Memory Channel and UDP/LAN."""
    sizes = sizes or STM_PAYLOAD_SIZES
    table = TableResult(
        title="Fig. 10: minimum STM one-way latencies "
        "(put on one space; get+consume on another; channel at consumer)",
        row_label="communication medium",
        col_label="payload size (bytes)",
        columns=sizes,
        unit="microseconds",
    )
    if mode == "simulated":
        for key, medium in _MEDIA_ROWS:
            table.rows[medium.name] = {
                s: simulate_stm_latency_us(medium, s, items) for s in sizes
            }
            table.paper[medium.name] = dict(_PAPER[key])
    elif mode == "measured":
        from repro.transport.serialization import frame_stats

        frame_stats.reset()
        table.rows["thread runtime (this host)"] = {
            s: measure_stm_latency_us(s, items) for s in sizes
        }
        snap = frame_stats.snapshot()
        if snap["frames_encoded"]:
            per_byte = (
                snap["payload_bytes_copied"] / snap["payload_bytes_framed"]
            )
            table.notes = (
                f"payload framing: {snap['frames_encoded']} payloads shipped "
                f"out-of-band, {per_byte:.2f} memcpys per payload byte "
                f"(send gather + receive reassembly)"
            )
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return table


def simulate_stm_latency_us(medium: Medium, size: int, items: int = 50) -> float:
    """Steady-state per-item latency in the simulated cluster."""
    sim = SimStampede(n_spaces=2, inter_node=medium)
    chan = sim.create_channel(home=1)  # co-located with the consumer

    def producer(t):
        out = yield from t.attach_output(chan)
        for i in range(items):
            t.set_virtual_time(i)
            yield from t.put(out, i, nbytes=size)

    def consumer(t):
        inp = yield from t.attach_input(chan)
        for _ in range(items):
            _payload, ts, _size = yield from t.get(inp, STM_OLDEST)
            yield from t.consume(inp, ts)

    sim.spawn(producer, space=0)
    sim.spawn(consumer, space=1)
    sim.run()
    return sim.now / items


def measure_stm_latency_us(size: int, items: int = 50) -> float:
    """Per-item put→get→consume cycle on the real thread runtime."""
    with Cluster(n_spaces=2, gc_period=None) as cluster:
        payload = bytes(size)
        creator = cluster.space(0).adopt_current_thread(virtual_time=0)
        chan = STM(cluster.space(0)).create_channel("fig10", home=1)

        def producer() -> None:
            from repro.runtime import current_thread

            out = STM(cluster.space(0)).lookup("fig10").attach_output()
            me = current_thread()
            for i in range(items):
                me.set_virtual_time(i)
                out.put(i, payload)
            out.detach()

        def consumer() -> None:
            inp = STM(cluster.space(1)).lookup("fig10").attach_input()
            for _ in range(items):
                item = inp.get(STM_OLDEST)
                inp.consume(item.timestamp)
            inp.detach()

        t0 = time.perf_counter()
        threads = [
            cluster.space(1).spawn(consumer, virtual_time=0),
            cluster.space(0).spawn(producer, virtual_time=0),
        ]
        for thread in threads:
            thread.join(60.0)
        elapsed = time.perf_counter() - t0
        creator.exit()
    return elapsed / items * 1e6
