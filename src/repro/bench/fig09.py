"""Fig. 9 — maximum CLF bandwidths per medium and packet size.

    "Maximum bandwidths achievable under CLF are shown in Table 9 ... The
    rightmost column assumes that a sender waits for an acknowledgement
    from a receiver after sending an image-worth of data (230400 Bytes)."

``simulated`` evaluates the medium models' pipelined-throughput formula
(plus the acked-stream variant); ``measured`` streams real bytes through
the in-process CLF on this host.
"""

from __future__ import annotations

import threading
import time

from repro.bench.fig08 import PACKET_SIZES
from repro.bench.tables import TableResult
from repro.transport.clf import ClfNetwork
from repro.transport.media import IMAGE_BYTES, MEDIA

__all__ = ["clf_bandwidth_table", "measure_clf_stream_mbps"]

ACK_COLUMN = "8152*"

#: published cells preserved by the scan (8-byte column of Fig. 9).
_PAPER = {
    "shm": {8: 2.3},
    "memory_channel": {8: 2.3},
    "udp": {8: 0.13},
}


def clf_bandwidth_table(
    mode: str = "simulated", sizes: list[int] | None = None
) -> TableResult:
    """Regenerate Fig. 9; the ``8152*`` column is the per-image-ack variant."""
    sizes = sizes or PACKET_SIZES
    columns = [*sizes, ACK_COLUMN]
    table = TableResult(
        title="Fig. 9: maximum CLF bandwidths",
        row_label="communication medium",
        col_label="packet size (bytes)",
        columns=columns,
        unit="MB/s",
        notes="rightmost column (*): ack awaited after every 230400 B image",
    )
    if mode == "simulated":
        for key, medium in MEDIA.items():
            row = {s: medium.max_bandwidth_mbps(s) for s in sizes}
            row[ACK_COLUMN] = medium.acked_stream_bandwidth_mbps(
                IMAGE_BYTES, IMAGE_BYTES
            )
            table.rows[medium.name] = row
            table.paper[medium.name] = dict(_PAPER[key])
    elif mode == "measured":
        row = {s: measure_clf_stream_mbps(s) for s in sizes}
        row[ACK_COLUMN] = measure_clf_stream_mbps(8152, ack_every=IMAGE_BYTES)
        table.rows["in-process queues (this host)"] = row
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return table


def measure_clf_stream_mbps(
    packet_size: int,
    total_bytes: int = 2 * IMAGE_BYTES,
    ack_every: int | None = None,
) -> float:
    """Throughput of a one-way CLF stream on this host (MB/s).

    With ``ack_every``, the sender blocks for an 8-byte ack after each
    window of that many bytes, mirroring Fig. 9's starred column.
    """
    network = ClfNetwork.create(2)
    src, dst = network.endpoint(0), network.endpoint(1)
    n_messages = max(total_bytes // packet_size, 1)
    payload = bytes(packet_size)
    done = threading.Event()

    def sink() -> None:
        received = 0
        window = 0
        while received < n_messages:
            peer, data = dst.recv()
            received += 1
            if ack_every is not None:
                window += len(data)
                if window >= ack_every or received == n_messages:
                    window = 0
                    dst.send(peer, b"ack-8b..")
        done.set()

    thread = threading.Thread(target=sink, daemon=True)
    thread.start()
    sent_window = 0
    t0 = time.perf_counter()
    for i in range(n_messages):
        src.send(1, payload)
        if ack_every is not None:
            sent_window += packet_size
            if sent_window >= ack_every or i == n_messages - 1:
                sent_window = 0
                src.recv()  # the ack
    done.wait(timeout=30.0)
    dt = time.perf_counter() - t0
    network.close()
    return (n_messages * packet_size) / dt / 1e6
