"""Simulated kiosk pipeline: end-to-end frame latency per placement.

An experiment the paper motivates but does not tabulate: what does stage
placement cost the pipeline of Fig. 2, end to end, on the 1998 cluster?
The driver runs the kiosk's stage graph (digitizer → low-fi tracker →
decision → GUI) as simulated tasks with the compute costs of
:data:`~repro.runtime.placement.KIOSK_PIPELINE`, sweeping placements, and
reports the mean per-frame latency (digitize start → GUI consume) alongside
the analytic prediction from :mod:`repro.runtime.placement` — validating
the scheduler's model against the simulator.
"""

from __future__ import annotations

from repro.bench.tables import TableResult
from repro.core import STM_OLDEST
from repro.runtime.placement import KIOSK_PIPELINE, predict
from repro.sim import SimStampede
from repro.transport.clf import ClusterTopology

__all__ = ["simulate_pipeline_latency_us", "pipeline_placement_table"]


def simulate_pipeline_latency_us(
    placement: tuple[int, ...],
    frames: int = 20,
    frame_interval_us: float = 33_333.0,
) -> float:
    """Mean per-frame end-to-end latency of the kiosk pipeline in the sim."""
    stages = KIOSK_PIPELINE.stages
    if len(placement) != len(stages):
        raise ValueError(
            f"placement needs {len(stages)} entries, got {len(placement)}"
        )
    n_spaces = max(max(placement) + 1, 2)
    sim = SimStampede(n_spaces=n_spaces)
    # channel between stage i and i+1, homed at the consumer (§6 hint):
    channels = [
        sim.create_channel(home=placement[i + 1])
        for i in range(len(stages) - 1)
    ]
    start_times: dict[int, float] = {}
    end_times: dict[int, float] = {}

    def source(t):
        out = yield from t.attach_output(channels[0])
        for i in range(frames):
            yield from t.delay(frame_interval_us)
            t.set_virtual_time(i)
            start_times[i] = t.now
            yield from t.delay(stages[0].compute_us)
            yield from t.put(out, i, nbytes=stages[0].output_bytes)

    def make_interior(index: int):
        def interior(t):
            inp = yield from t.attach_input(channels[index - 1])
            out = yield from t.attach_output(channels[index])
            for _ in range(frames):
                _p, ts, _s = yield from t.get(inp, STM_OLDEST)
                yield from t.delay(stages[index].compute_us)
                yield from t.put(out, ts, nbytes=stages[index].output_bytes)
                yield from t.consume(inp, ts)
        return interior

    def sink(t):
        inp = yield from t.attach_input(channels[-1])
        for _ in range(frames):
            _p, ts, _s = yield from t.get(inp, STM_OLDEST)
            yield from t.delay(stages[-1].compute_us)
            yield from t.consume(inp, ts)
            end_times[ts] = t.now

    sim.spawn(source, space=placement[0], name="digitizer")
    for index in range(1, len(stages) - 1):
        sim.spawn(make_interior(index), space=placement[index],
                  name=stages[index].name)
    sim.spawn(sink, space=placement[-1], name="gui")
    sim.run()
    latencies = [end_times[i] - start_times[i] for i in range(frames)]
    return sum(latencies) / len(latencies)


def pipeline_placement_table(frames: int = 20) -> TableResult:
    """Sweep representative placements; report simulated vs predicted."""
    table = TableResult(
        title="Kiosk pipeline latency per placement (simulated vs model)",
        row_label="placement (dig, lofi, decision, gui)",
        col_label="",
        columns=["simulated_us", "predicted_us"],
        unit="microseconds per frame",
        notes=(
            "simulated: discrete-event kiosk pipeline; predicted: the "
            "placement scheduler's analytic model (repro.runtime.placement)"
        ),
    )
    placements = [
        (0, 0, 0, 0),
        (0, 1, 1, 1),
        (0, 1, 2, 2),
        (0, 1, 0, 1),
    ]
    for placement in placements:
        topology = ClusterTopology(max(max(placement) + 1, 2))
        predicted = predict(KIOSK_PIPELINE, placement, topology)
        simulated = simulate_pipeline_latency_us(placement, frames)
        table.rows[str(placement)] = {
            "simulated_us": simulated,
            "predicted_us": predicted.latency_us,
        }
    return table
