"""PR-6 benchmarks: the process runtime vs the thread runtime.

Four measurements of :class:`~repro.runtime.procs.ProcCluster` against the
thread runtime it escapes from:

* **cpu pipeline** (the headline) — the paper's own scenario (§2-3): an
  interactive pipeline path must keep streaming while CPU-bound tracker
  stages compute.  W worker spaces run *pure-Python* compute kernels
  (holding the GIL, like real Python vision code that isn't one giant
  numpy call); the driver concurrently streams put → get rounds through a
  channel homed on a quiet pipeline-stage space and we measure that
  stream's throughput.  Under the thread runtime every RPC wakeup must win
  the one GIL back from the spinning workers — each hop stalls up to (and
  often beyond) the 5 ms switch interval, and the GIL has no wakeup
  fairness, so the interactive path collapses.  Under the process runtime
  the quiet stage lives in its own process and the OS's wakeup preemption
  schedules it immediately, CPU hogs or not.
* **compute saturation** — the counterpoint: a fan-out/fan-in round where
  the *measured path is the compute itself*.  On a single-core host (this
  repo's CI) total compute serializes either way, so processes buy nothing
  and pay IPC overhead (expect ~0.8-1.0x); on a multi-core host this is
  where real parallel speedup appears.  Recording it keeps the headline
  honest about what the GIL escape does and does not fix on one core.
* **shm cycle** — a 1 MB SERIALIZE payload crossing *process* boundaries
  (remote put + remote get through a shared-memory ring).  The
  ``frame_stats`` counters of both processes prove the ring's data path
  copies the payload exactly once per side: segments → ring on send,
  ring → message buffer on receive, memoryviews everywhere else.
* **kiosk fleet** — the cross-process kiosk pipeline
  (:mod:`repro.kiosk.procfleet`) on both runtimes: its stages are
  numpy-heavy (numpy releases the GIL) and its frames cost real
  serialization to cross process boundaries, so threads win that shape on
  one core.

Run: ``python -m repro.bench --only pr6-procs`` or
``python -m repro.bench.pr6_procs [out.json]``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

from repro.bench.tables import TableResult

__all__ = [
    "measure_cpu_pipeline",
    "measure_compute_saturation",
    "measure_shm_cycle",
    "measure_fleet",
    "procs_snapshot",
    "pr6_procs_table",
]


def _spin(iters: int) -> int:
    """A GIL-holding compute kernel (pure Python, no C escape hatches)."""
    acc = 1
    for i in range(iters):
        acc = (acc * 1103515245 + i) % 2147483647
    return acc


def _calibrate_spin(target_ms: float) -> int:
    """Iterations of :func:`_spin` that take ~``target_ms`` on this host."""
    iters = 2_000
    while True:
        t0 = time.perf_counter()
        _spin(iters)
        elapsed = time.perf_counter() - t0
        if elapsed >= target_ms / 1e3 or iters >= 50_000_000:
            return iters
        iters = int(iters * min(8.0, max(1.5, target_ms / 1e3 / max(elapsed, 1e-7))))


# ----------------------------------------------------------------------
# 1. interactive pipeline throughput under CPU-bound load (the headline)
# ----------------------------------------------------------------------
def _load_worker(worker: int, chunk_iters: int) -> int:
    """A CPU-bound tracker stand-in: spin until the stop token appears.

    The stop channel is homed on this worker's own space, so the
    end-of-run poll is a local non-blocking get — no wire traffic and no
    cross-space wakeups that would perturb the measured path.
    """
    from repro.core import INFINITY
    from repro.errors import ChannelEmptyError
    from repro.runtime.threads import require_current_thread
    from repro.stm import STM

    stm = STM.here()
    me = require_current_thread()
    ready = stm.lookup("pr6.ready", wait=True).attach_output()
    stop = stm.lookup(f"pr6.stop.{worker}", wait=True).attach_input()
    ready.put(worker, worker, refcount=1)
    me.set_virtual_time(INFINITY)
    chunks = 0
    try:
        while True:
            _spin(chunk_iters)
            chunks += 1
            try:
                stop.get(0, block=False)
            except ChannelEmptyError:
                continue
            stop.consume(0)
            break
    finally:
        ready.detach()
        stop.detach()
    return chunks


def _interactive_rounds(cluster, n_workers: int, chunk_iters: int,
                        window_s: float, warmup: int) -> float:
    """Rounds/s of the interactive path with ``n_workers`` spaces spinning.

    Topology: space 0 drives, space 1 is the quiet pipeline stage hosting
    the streamed channel, spaces 2..n_workers+1 spin.
    """
    from repro.stm import STM

    space = cluster.space(0)
    me = space.adopt_current_thread(virtual_time=0)
    stm = STM(space)
    ready = stm.create_channel("pr6.ready", home=0)
    ping = stm.create_channel("pr6.ping", home=1)
    stops = [
        stm.create_channel(f"pr6.stop.{w}", home=2 + w)
        for w in range(n_workers)
    ]
    ready_in = ready.attach_input()
    out, inp = ping.attach_output(), ping.attach_input()
    stop_outs = [chan.attach_output() for chan in stops]
    handles = [
        space.spawn(_load_worker, (w, chunk_iters), on_space=2 + w)
        for w in range(n_workers)
    ]
    try:
        for w in range(n_workers):  # all workers attached and spinning
            ready_in.get_consume(w)
        ts = 0
        for ts in range(warmup):
            out.put(ts, ts, refcount=1)
            inp.get_consume(ts)
        rounds = 0
        t0 = time.perf_counter()
        deadline = t0 + window_s
        while time.perf_counter() < deadline:
            ts += 1
            out.put(ts, ts, refcount=1)
            inp.get_consume(ts)
            rounds += 1
        elapsed = time.perf_counter() - t0
        for stop_out in stop_outs:
            stop_out.put(0, 0, refcount=1)
        for handle in handles:
            handle.join(timeout=30.0)
    finally:
        for conn in [ready_in, out, inp, *stop_outs]:
            conn.detach()
        me.exit()
    return rounds / elapsed


def measure_cpu_pipeline(
    workers: tuple[int, ...] = (1, 2, 4),
    window_s: float = 1.0,
    warmup: int = 20,
    chunk_ms: float = 5.0,
) -> dict[str, Any]:
    """Interactive-path throughput while W CPU-bound worker spaces compute.

    The headline acceptance number is ``rows[workers=4]["speedup"]``: the
    process runtime must sustain at least twice the thread runtime's
    round rate when four spaces are busy with GIL-holding compute.
    """
    from repro.runtime import Cluster, ProcCluster

    chunk_iters = _calibrate_spin(chunk_ms)
    rows = []
    for n_workers in workers:
        n_spaces = n_workers + 2
        with Cluster(n_spaces=n_spaces, gc_period=None) as cluster:
            threads_rps = _interactive_rounds(
                cluster, n_workers, chunk_iters, window_s, warmup
            )
        with ProcCluster(n_spaces=n_spaces, gc_period=None) as cluster:
            procs_rps = _interactive_rounds(
                cluster, n_workers, chunk_iters, window_s, warmup
            )
        rows.append({
            "workers": n_workers,
            "threads_rounds_per_s": threads_rps,
            "procs_rounds_per_s": procs_rps,
            "speedup": procs_rps / threads_rps,
        })
    return {
        "window_s": window_s,
        "warmup": warmup,
        "chunk_ms_target": chunk_ms,
        "chunk_iters": chunk_iters,
        "cpu_count": os.cpu_count(),
        "rows": rows,
    }


# ----------------------------------------------------------------------
# 2. compute saturation (the honest counterpoint)
# ----------------------------------------------------------------------
def _cpu_worker(worker: int, frames: int, spin_iters: int) -> int:
    """One fan-out/fan-in stage: get work, compute, put result."""
    from repro.core import INFINITY
    from repro.runtime.threads import require_current_thread
    from repro.stm import STM

    stm = STM.here()
    me = require_current_thread()
    inp = stm.lookup(f"pr6.work.{worker}", wait=True).attach_input()
    out = stm.lookup(f"pr6.result.{worker}", wait=True).attach_output()
    me.set_virtual_time(INFINITY)  # interior stage: timestamps are inherited
    try:
        for ts in range(frames):
            inp.get(ts)
            out.put(ts, _spin(spin_iters), refcount=1)  # put while open (§4.2)
            inp.consume(ts)
    finally:
        inp.detach()
        out.detach()
    return frames


def _saturation_rounds(cluster, n_workers: int, frames: int, warmup: int,
                       spin_iters: int) -> float:
    """Drive ``warmup + frames`` fan-out/fan-in rounds; time the last ``frames``."""
    from repro.stm import STM

    space = cluster.space(0)
    me = space.adopt_current_thread(virtual_time=0)
    stm = STM(space)
    outs = []
    inps = []
    total = warmup + frames
    for w in range(n_workers):
        work = stm.create_channel(f"pr6.work.{w}", home=w + 1)
        result = stm.create_channel(f"pr6.result.{w}", home=0)
        outs.append(work.attach_output())
        inps.append(result.attach_input())
    handles = [
        space.spawn(_cpu_worker, (w, total, spin_iters), on_space=w + 1)
        for w in range(n_workers)
    ]
    t0 = 0.0
    try:
        for ts in range(total):
            if ts == warmup:
                t0 = time.perf_counter()
            me.set_virtual_time(ts)
            for out in outs:
                out.put(ts, ts, refcount=1)
            for inp in inps:
                inp.get_consume(ts)
        elapsed = time.perf_counter() - t0
        for handle in handles:
            handle.join(timeout=30.0)
    finally:
        for conn in outs + inps:
            conn.detach()
        me.exit()
    return elapsed


def measure_compute_saturation(
    n_workers: int = 4,
    frames: int = 30,
    warmup: int = 5,
    spin_ms: float = 2.0,
) -> dict[str, Any]:
    """Fan-out/fan-in rounds where the measured path *is* the compute.

    On one core this shows the GIL escape buying nothing (compute
    serializes either way, IPC costs extra); on many cores it shows real
    parallelism.  ``cpu_count`` is recorded so readers know which regime
    produced the numbers.
    """
    from repro.runtime import Cluster, ProcCluster

    spin_iters = _calibrate_spin(spin_ms)
    with Cluster(n_spaces=n_workers + 1, gc_period=None) as cluster:
        threads_s = _saturation_rounds(cluster, n_workers, frames, warmup, spin_iters)
    with ProcCluster(n_spaces=n_workers + 1, gc_period=None) as cluster:
        procs_s = _saturation_rounds(cluster, n_workers, frames, warmup, spin_iters)
    return {
        "workers": n_workers,
        "frames": frames,
        "spin_ms_target": spin_ms,
        "spin_iters": spin_iters,
        "cpu_count": os.cpu_count(),
        "threads_fps": frames / threads_s,
        "procs_fps": frames / procs_s,
        "speedup": threads_s / procs_s,
    }


# ----------------------------------------------------------------------
# 3. one-memcpy-per-side shared-memory cycle
# ----------------------------------------------------------------------
def measure_shm_cycle(payload_bytes: int = 1 << 20, iters: int = 20) -> dict[str, Any]:
    """1 MB put → get across a process boundary through the shm ring.

    Both processes' ``frame_stats`` counters are read over the wire; the
    parent's shm wire-byte counters prove the payload travelled through the
    ring (and not the TCP inline fallback).
    """
    from repro.obs.metrics import REGISTRY
    from repro.runtime import ProcCluster
    from repro.stm import STM

    def shm_tx() -> int | float:
        return REGISTRY.counter(
            "clf_wire_bytes_total", space=0, medium="shm", direction="tx"
        ).value

    with ProcCluster(n_spaces=2, gc_period=None) as cluster:
        space = cluster.space(0)
        me = space.adopt_current_thread(virtual_time=0)
        stm = STM(space)
        chan = stm.create_channel("pr6.shm", home=1)
        out, inp = chan.attach_output(), chan.attach_input()
        payload = bytes(payload_bytes)
        for ts in range(3):  # warm-up
            me.set_virtual_time(ts)
            out.put(ts, payload, refcount=1)
            inp.get_consume(ts)
        cluster.endpoint_stats(0, reset_frames=True)
        cluster.endpoint_stats(1, reset_frames=True)
        tx_before = shm_tx()
        t0 = time.perf_counter()
        for ts in range(3, 3 + iters):
            me.set_virtual_time(ts)
            out.put(ts, payload, refcount=1)
            inp.get_consume(ts)
        elapsed = time.perf_counter() - t0
        parent = cluster.endpoint_stats(0)  # local: adds no wire traffic
        tx_delta = shm_tx() - tx_before
        child = cluster.endpoint_stats(1)
        out.detach()
        inp.detach()
        me.exit()
    # 2 payload transfers per cycle: the put frame out, the get reply back.
    transfers = 2 * iters
    return {
        "payload_bytes": payload_bytes,
        "iters": iters,
        "cycle_us": elapsed / iters * 1e6,
        "mbps": transfers * payload_bytes / elapsed / 1e6,
        "payload_copies_per_transfer_parent":
            parent["frames"]["payload_bytes_copied"] / (transfers * payload_bytes),
        "payload_copies_per_transfer_child":
            child["frames"]["payload_bytes_copied"] / (transfers * payload_bytes),
        "shm_tx_bytes_timed": tx_delta,
    }


# ----------------------------------------------------------------------
# 4. the kiosk fleet on both runtimes
# ----------------------------------------------------------------------
def measure_fleet(n_frames: int = 30) -> dict[str, Any]:
    """The cross-process kiosk pipeline on both runtimes (fps, error)."""
    from repro.kiosk.procfleet import FleetConfig, run_fleet
    from repro.runtime import Cluster, ProcCluster

    config = FleetConfig(n_frames=n_frames)
    with Cluster(n_spaces=3, gc_period=0.05) as cluster:
        threads = run_fleet(cluster, config)
    with ProcCluster(n_spaces=3, gc_period=0.05) as cluster:
        procs = run_fleet(cluster, config)
    return {
        "n_frames": n_frames,
        "threads_fps": threads.fps,
        "procs_fps": procs.fps,
        "threads_error_px": threads.mean_tracking_error,
        "procs_error_px": procs.mean_tracking_error,
        "frames_detected_agree": threads.frames_detected == procs.frames_detected,
    }


# ----------------------------------------------------------------------
# snapshot + table
# ----------------------------------------------------------------------
def procs_snapshot(out_path: str | None = None) -> dict[str, Any]:
    """Run all four measurements; optionally write them to ``out_path``."""
    snapshot = {
        "cpu_pipeline": measure_cpu_pipeline(),
        "compute_saturation": measure_compute_saturation(),
        "shm_cycle": measure_shm_cycle(),
        "kiosk_fleet": measure_fleet(),
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(snapshot, fh, indent=2)
            fh.write("\n")
    return snapshot


def pr6_procs_table(mode: str = "measured") -> TableResult:
    """The snapshot as a render-able table (for ``python -m repro.bench``)."""
    snap = procs_snapshot()
    cpu = snap["cpu_pipeline"]
    table = TableResult(
        title="PR-6 process runtime vs thread runtime (this host)",
        row_label="metric",
        col_label="",
        columns=["value"],
        unit="(mixed)",
        notes=(
            f"interactive path under ~{cpu['chunk_ms_target']} ms GIL-holding "
            f"compute chunks on {cpu['cpu_count']} core(s); "
            f"shm cycle: {snap['shm_cycle']['payload_bytes']} B payload; "
            f"fleet: {snap['kiosk_fleet']['n_frames']} kiosk frames"
        ),
    )
    for row in cpu["rows"]:
        table.rows[
            f"interactive rounds/s speedup, {row['workers']} busy space(s)"
        ] = {"value": row["speedup"]}
    table.rows["compute saturation x4 speedup"] = {
        "value": snap["compute_saturation"]["speedup"]
    }
    table.rows["1MB cross-process put+get (us)"] = {
        "value": snap["shm_cycle"]["cycle_us"]
    }
    table.rows["payload memcpys per transfer (parent)"] = {
        "value": snap["shm_cycle"]["payload_copies_per_transfer_parent"]
    }
    table.rows["payload memcpys per transfer (child)"] = {
        "value": snap["shm_cycle"]["payload_copies_per_transfer_child"]
    }
    table.rows["kiosk fleet fps (threads)"] = {
        "value": snap["kiosk_fleet"]["threads_fps"]
    }
    table.rows["kiosk fleet fps (procs)"] = {
        "value": snap["kiosk_fleet"]["procs_fps"]
    }
    return table


if __name__ == "__main__":  # pragma: no cover - manual driver
    import sys

    out = sys.argv[1] if len(sys.argv) > 1 else None
    print(json.dumps(procs_snapshot(out), indent=2))
