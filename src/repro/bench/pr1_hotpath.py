"""PR-1 hot-path counters: wakeups per op, GC epoch cost, payload framing.

Three targeted measurements proving the put → get → consume → GC hot-path
optimizations (targeted wakeups, incremental GC minima, zero-copy payload
framing) against the seed implementation:

* **wakeups** — N consumers block in gets for distinct timestamps on one
  channel; a producer satisfies them one put at a time.  We count how many
  blocked waiters are *woken* per put: a ``notify_all`` scheme wakes every
  waiter on every state change (thundering herd); targeted wakeups wake
  exactly the one whose operation completed.
* **gc epoch** — a 64-channel / 256-item cluster in the steady state that
  makes the seed's ``unconsumed_min`` skip-scan maximal (everything
  explicitly consumed above a pinned watermark), plus a thread visibility
  that pins the horizon so nothing is collected.  We time ``run_once``:
  cached minima make the per-epoch kernel work O(inputs), and the
  scatter/gather daemon turns sum-of-RTTs into max-of-RTTs.
* **framing** — a 1 MB SERIALIZE payload crossing address spaces
  (remote put + remote get).  With pickle protocol-5 out-of-band buffers and
  scatter/gather packetization the payload is copied once per side
  (packetize and reassemble); the seed re-pickles it inside the RPC message
  and slices it twice more on the way out.

The module is deliberately *scheme-agnostic*: when the runtime exposes the
new counters (``LocalChannel.waiters_woken``, ``ChannelKernel.min_scan_steps``,
``frame_stats``) it reads them; otherwise it instruments the seed's
condition variable so the same script produced the "seed" rows recorded in
``BENCH_pr1.json``.

Run: ``python -m repro.bench --only pr1-hotpath`` or
``python -m repro.bench.pr1_hotpath [out.json]``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any

from repro.bench.tables import TableResult

__all__ = [
    "measure_wakeups",
    "measure_gc_epoch",
    "measure_framing",
    "hotpath_snapshot",
    "pr1_hotpath_table",
]


def _drain_barrier(threads, timeout: float = 20.0) -> None:
    for t in threads:
        t.join(timeout)


# ----------------------------------------------------------------------
# 1. targeted wakeups
# ----------------------------------------------------------------------
def measure_wakeups(n_consumers: int = 8, settle_s: float = 0.05) -> dict[str, Any]:
    """Blocked-thread wakeups per put with ``n_consumers`` blocked gets.

    Each consumer blocks on a *distinct* timestamp, and puts are spaced by
    ``settle_s`` so every woken thread has re-blocked before the next state
    change — i.e. we measure the wakeup fan-out of one isolated operation,
    not the coalescing that back-to-back notifies happen to get for free.
    """
    from repro.runtime import Cluster
    from repro.stm import STM

    with Cluster(n_spaces=1, gc_period=None) as cluster:
        me = cluster.space(0).adopt_current_thread(virtual_time=0)
        stm = STM(cluster.space(0))
        chan = stm.create_channel("pr1.wakeups")
        out = chan.attach_output()
        local = cluster.space(0)._channel(chan.channel_id)
        read_woken = _install_wakeup_probe(local)
        started = threading.Barrier(n_consumers + 1)

        def consumer(ts: int) -> None:
            inp = STM(cluster.space(0)).lookup("pr1.wakeups").attach_input()
            started.wait()
            inp.get(ts)
            inp.consume(ts)
            inp.detach()

        threads = [
            cluster.space(0).spawn(consumer, (ts,), virtual_time=0)
            for ts in range(n_consumers)
        ]
        started.wait()
        deadline = time.monotonic() + 10.0
        # Wait until every consumer is actually blocked in its get.
        while time.monotonic() < deadline:
            if _blocked_waiters(local) >= n_consumers:
                break
            time.sleep(0.01)  # stm-ok: STM506 -- polling for parked waiters

        for ts in range(n_consumers):
            out.put(ts, b"x", refcount=1)
            time.sleep(settle_s)  # stm-ok: STM506 -- settle between wakeups
        _drain_barrier(threads)
        woken = read_woken()
        out.detach()
        me.exit()
    return {
        "blocked_getters": n_consumers,
        "puts": n_consumers,
        "waiters_woken": woken,
        "woken_per_put": woken / n_consumers,
    }


def _blocked_waiters(local) -> int:
    """How many operations are currently blocked on this channel."""
    if hasattr(local, "get_waiters"):  # targeted-wakeup scheme
        with local.lock:
            return len(local.get_waiters) + len(local.put_waiters)
    # seed scheme: blocked local ops wait on the channel condition variable
    return len(local.cond._waiters)  # noqa: SLF001 - instrumentation


def _install_wakeup_probe(local):
    """Return a callable yielding blocked-thread wakeups since installation.

    A "wakeup" is one resumption of a thread that was blocked in a channel
    operation: under the seed's ``notify_all`` scheme every state change
    resumes every waiter (most resume futilely, re-check, and re-block);
    under targeted wakeups a thread resumes exactly once, with its result.
    """
    if hasattr(local, "waiters_woken"):  # targeted-wakeup scheme: built-in
        start = local.waiters_woken
        return lambda: local.waiters_woken - start
    # seed scheme: count returns from the condition wait (one per resumption)
    counters = {"woken": 0}
    cond = local.cond
    original = cond.wait

    def counting_wait(timeout=None):
        result = original(timeout)
        counters["woken"] += 1
        return result

    cond.wait = counting_wait
    return lambda: counters["woken"]


# ----------------------------------------------------------------------
# 2. GC epoch cost
# ----------------------------------------------------------------------
def measure_gc_epoch(
    n_spaces: int = 4,
    n_channels: int = 64,
    items_per_channel: int = 256,
    epochs: int = 10,
) -> dict[str, Any]:
    """Steady-state ``GcDaemon.run_once`` cost on a loaded cluster.

    Every channel holds ``items_per_channel`` items, all explicitly consumed
    above a pinned watermark (the seed's worst case: the ``unconsumed_min``
    skip-scan walks every item, every epoch).  A low thread visibility pins
    the horizon so the load never drains.
    """
    from repro.runtime import Cluster
    from repro.runtime.gc_daemon import GcDaemon
    from repro.stm import STM

    base_ts = 100  # items start above the pinned watermark
    with Cluster(n_spaces=n_spaces, gc_period=None) as cluster:
        me = cluster.space(0).adopt_current_thread(virtual_time=50)
        stm = STM(cluster.space(0))
        # the input connections must stay attached while the epochs run —
        # their consumed-above-a-watermark state is the load being measured —
        # so collect them and detach after timing.
        conns = []
        for i in range(n_channels):
            chan = stm.create_channel(f"pr1.gc{i}", home=i % n_spaces)
            out, inp = chan.attach_output(), chan.attach_input()
            conns.append((out, inp))
            for ts in range(base_ts, base_ts + items_per_channel):
                out.put(ts, b"")
            for ts in range(base_ts, base_ts + items_per_channel):
                inp.consume(ts)
        daemon = GcDaemon(cluster, period=1.0)
        daemon.run_once()  # warm-up epoch (fills min caches when present)
        scan_probe = _install_scan_probe(cluster)
        t0 = time.perf_counter()
        for _ in range(epochs):
            daemon.run_once()
        epoch_s = (time.perf_counter() - t0) / epochs
        scan_steps = scan_probe() / epochs
        for out, inp in conns:
            out.detach()
            inp.detach()
        me.exit()
    return {
        "n_spaces": n_spaces,
        "n_channels": n_channels,
        "items_per_channel": items_per_channel,
        "epoch_ms": epoch_s * 1e3,
        "min_scan_steps_per_epoch": scan_steps,
    }


def _install_scan_probe(cluster):
    """Count unconsumed-min skip-scan steps across all channels."""
    kernels = [
        chan.kernel
        for space in cluster.spaces
        for chan in space.local_channels()
    ]
    if kernels and hasattr(kernels[0], "min_scan_steps"):
        start = sum(k.min_scan_steps for k in kernels)
        return lambda: sum(k.min_scan_steps for k in kernels) - start
    # seed scheme: wrap the item map's higher_key (the skip-scan's stepper)
    # at class level — SortedIntMap is slotted, so per-instance won't do.
    from repro.util.sortedmap import SortedIntMap

    counters = {"steps": 0}
    original = SortedIntMap.higher_key

    def stepping_higher_key(self_map, key):
        counters["steps"] += 1
        return original(self_map, key)

    SortedIntMap.higher_key = stepping_higher_key  # type: ignore[method-assign]
    return lambda: counters["steps"]


# ----------------------------------------------------------------------
# 3. zero-copy payload framing
# ----------------------------------------------------------------------
def measure_framing(payload_bytes: int = 1 << 20, iters: int = 30) -> dict[str, Any]:
    """Remote put + get + consume of a 1 MB SERIALIZE payload."""
    from repro.runtime import Cluster
    from repro.stm import STM

    with Cluster(n_spaces=2, gc_period=None) as cluster:
        me = cluster.space(0).adopt_current_thread(virtual_time=0)
        stm = STM(cluster.space(0))
        chan = stm.create_channel("pr1.frame", home=1)
        out, inp = chan.attach_output(), chan.attach_input()
        payload = bytes(payload_bytes)
        for ts in range(3):  # warm-up
            out.put(ts, payload, refcount=1)
            inp.get_consume(ts)
        copy_probe = _install_copy_probe()
        t0 = time.perf_counter()
        for ts in range(3, 3 + iters):
            out.put(ts, payload, refcount=1)
            inp.get_consume(ts)
        elapsed = time.perf_counter() - t0
        copied = copy_probe()
        out.detach()
        inp.detach()
        me.exit()
    cycle_us = elapsed / iters * 1e6
    result = {
        "payload_bytes": payload_bytes,
        "iters": iters,
        "cycle_us": cycle_us,
        "mbps": 2 * payload_bytes * iters / elapsed / 1e6,
    }
    if copied is not None:
        # payload memcpys per one-way transfer (2 transfers per cycle)
        result["payload_copies_per_transfer"] = copied / (2 * iters * payload_bytes)
    return result


def _install_copy_probe():
    """Count payload bytes copied by the framing layer, when instrumented."""
    try:
        from repro.transport.serialization import frame_stats
    except ImportError:  # seed scheme: no out-of-band framing counters
        return lambda: None
    frame_stats.reset()
    return lambda: frame_stats.payload_bytes_copied


# ----------------------------------------------------------------------
# snapshot + table
# ----------------------------------------------------------------------
def hotpath_snapshot(out_path: str | None = None) -> dict[str, Any]:
    """Run all three measurements; optionally write them to ``out_path``."""
    snapshot = {
        "wakeups": measure_wakeups(),
        "gc_epoch": measure_gc_epoch(),
        "framing": measure_framing(),
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(snapshot, fh, indent=2)
            fh.write("\n")
    return snapshot


def pr1_hotpath_table(mode: str = "measured") -> TableResult:
    """The snapshot as a render-able table (for ``python -m repro.bench``)."""
    snap = hotpath_snapshot()
    table = TableResult(
        title="PR-1 hot-path counters (this host)",
        row_label="metric",
        col_label="",
        columns=["value"],
        unit="(mixed)",
        notes=(
            f"wakeups: {snap['wakeups']['blocked_getters']} blocked getters; "
            f"gc: {snap['gc_epoch']['n_channels']} channels x "
            f"{snap['gc_epoch']['items_per_channel']} items; "
            f"framing: {snap['framing']['payload_bytes']} B payload"
        ),
    )
    table.rows["waiters woken per put"] = {
        "value": snap["wakeups"]["woken_per_put"]
    }
    table.rows["GC epoch (ms)"] = {"value": snap["gc_epoch"]["epoch_ms"]}
    table.rows["GC min-scan steps/epoch"] = {
        "value": snap["gc_epoch"]["min_scan_steps_per_epoch"]
    }
    table.rows["1MB remote put+get (us)"] = {
        "value": snap["framing"]["cycle_us"]
    }
    copies = snap["framing"].get("payload_copies_per_transfer")
    if copies is not None:
        table.rows["payload memcpys per transfer"] = {"value": copies}
    return table


if __name__ == "__main__":  # pragma: no cover - manual driver
    import sys

    out = sys.argv[1] if len(sys.argv) > 1 else None
    print(json.dumps(hotpath_snapshot(out), indent=2))
