"""PR-10 telemetry-plane costs: harvest, scrape, and hot-path overhead.

Three measurements, all on this host:

1. **harvest cost vs ring size** — a traced two-process cluster whose
   child fills its recorder ring, then the collector drains it over the
   ``TelemetryHarvestReq`` control RPC (clock probes + pickle + transport).
   The interesting scaling is events-harvested vs wall time: the harvest
   is off the hot path, but a kiosk operator pressing "save trace" feels
   it, so it should stay well under a second even at the largest ring.
2. **exposition latency under concurrent scrapes** — 100 simultaneous
   ``GET /metrics`` against one :class:`~repro.obs.promtext.ExpositionServer`
   (stdlib ``ThreadingHTTPServer``), reporting per-request p50/p95/max.
   This is the "a fleet of Prometheus instances all fire at once" worst
   case; the render is recomputed per request, never cached.
3. **hot-path overhead delta** — re-runs :func:`repro.bench.obs_overhead.run`
   and compares against the figures frozen in ``BENCH_pr5.json``, proving
   the telemetry plane (flow ids on every CLF send/recv, wire counters)
   did not regress the PR-5 acceptance bound (<5% with tracing disarmed).

Run: ``python -m repro.bench --only pr10-telemetry`` or
``python -m repro.bench.pr10_telemetry [out.json]`` (the latter wrote
``BENCH_pr10.json``).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from pathlib import Path
from typing import Any

from repro.bench import obs_overhead
from repro.bench.tables import TableResult

__all__ = [
    "measure_harvest",
    "measure_scrape",
    "measure_overhead_delta",
    "telemetry_snapshot",
    "pr10_telemetry_table",
]

_REPO_ROOT = Path(__file__).resolve().parents[3]


# ----------------------------------------------------------------------
# 1. harvest cost vs ring size
# ----------------------------------------------------------------------
def _fill_ring(n: int) -> int:
    """Spawn worker: tick virtual time ``n`` times to fill the local ring."""
    from repro.runtime.threads import require_current_thread

    me = require_current_thread()
    for ts in range(n):
        me.set_virtual_time(ts)
    return n


def measure_harvest(
    capacities: tuple[int, ...] = (4096, 16384, 65536),
    reps: int = 3,
) -> dict[str, Any]:
    """Wall time of ``ProcCluster.harvest_telemetry`` as rings grow.

    The child fills its ring to capacity before the collector drains it;
    ``harvest_ms`` is the best of ``reps`` harvests (the rings are not
    cleared between them, so every rep moves the same payload).
    """
    from repro.obs import events as obs_events
    from repro.runtime import ProcCluster

    rows = []
    for capacity in capacities:
        obs_events.disable()
        obs_events.enable(capacity=capacity)
        try:
            with ProcCluster(n_spaces=2, gc_period=None) as cluster:
                worker = cluster.space(0).spawn(
                    _fill_ring, (capacity,), on_space=1, name="ring-filler"
                )
                worker.join(timeout=120.0)
                best_s = None
                telemetry = None
                for _ in range(reps):
                    t0 = time.perf_counter()
                    telemetry = cluster.harvest_telemetry()
                    elapsed = time.perf_counter() - t0
                    if best_s is None or elapsed < best_s:
                        best_s = elapsed
                events = sum(
                    len(ring["events"])
                    for proc in telemetry.processes
                    for ring in proc.rings
                )
        finally:
            obs_events.disable()
        rows.append({
            "ring_capacity": capacity,
            "events_harvested": events,
            "harvest_ms": best_s * 1e3,
            "us_per_event": best_s * 1e6 / events if events else None,
        })
    return {"reps": reps, "rows": rows}


# ----------------------------------------------------------------------
# 2. exposition latency under concurrent scrapes
# ----------------------------------------------------------------------
def _scrape_registry(n_channels: int):
    """A registry shaped like a real run: per-channel latency histograms."""
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    for chan in range(n_channels):
        put = registry.histogram("stm_put_ns", channel=f"chan-{chan}")
        get = registry.histogram("stm_get_ns", channel=f"chan-{chan}")
        for i in range(200):
            put.observe(500 + 37 * i)
            get.observe(900 + 53 * i)
        registry.counter("frames_total", channel=f"chan-{chan}").inc(200)
    registry.gauge("stm_virtual_time", space=0).set(1e6)
    return registry


def measure_scrape(
    n_clients: int = 100, n_channels: int = 32
) -> dict[str, Any]:
    """Per-request latency of ``n_clients`` simultaneous ``GET /metrics``.

    Every client blocks on one barrier, then fires; each request renders
    the full Prometheus text afresh (no caching in the handler), so this
    bounds the stampede a misconfigured scrape fleet could produce.
    """
    from repro.obs.promtext import ExpositionServer

    registry = _scrape_registry(n_channels)
    server = ExpositionServer(source=registry.dump).start()
    latencies_s: list[float | None] = [None] * n_clients
    body_bytes = [0]
    barrier = threading.Barrier(n_clients)

    def client(idx: int) -> None:
        barrier.wait()
        t0 = time.perf_counter()
        with urllib.request.urlopen(server.url, timeout=300.0) as resp:
            body = resp.read()
        latencies_s[idx] = time.perf_counter() - t0
        body_bytes[0] = len(body)

    try:
        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(n_clients)
        ]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        wall_s = time.perf_counter() - t0
    finally:
        server.stop()
    done = sorted(lat for lat in latencies_s if lat is not None)
    if len(done) != n_clients:
        raise RuntimeError(
            f"only {len(done)}/{n_clients} scrapes completed"
        )
    return {
        "clients": n_clients,
        "series_channels": n_channels,
        "body_bytes": body_bytes[0],
        "p50_ms": done[len(done) // 2] * 1e3,
        "p95_ms": done[int(len(done) * 0.95)] * 1e3,
        "max_ms": done[-1] * 1e3,
        "wall_ms": wall_s * 1e3,
    }


# ----------------------------------------------------------------------
# 3. hot-path overhead delta vs the PR-5 baseline
# ----------------------------------------------------------------------
def measure_overhead_delta(
    items: int = 4000,
    baseline_path: str | Path | None = None,
) -> dict[str, Any]:
    """Re-run the PR-5 overhead gate and diff against ``BENCH_pr5.json``.

    The telemetry plane added work on the traced paths (flow ids on CLF
    instants) and none on the disarmed path, so ``disabled_overhead_bound_pct``
    must still clear the <5% acceptance criterion and stay in the same
    regime as the frozen PR-5 figure.
    """
    report = obs_overhead.run(items=items)
    out: dict[str, Any] = {
        "micro_op": report,
        "within_disabled_budget": report["disabled_overhead_bound_pct"] < 5.0,
    }
    if baseline_path is None:
        baseline_path = _REPO_ROOT / "BENCH_pr5.json"
    baseline_path = Path(baseline_path)
    if baseline_path.exists():
        pr5 = json.loads(baseline_path.read_text())["micro_op"]
        out["pr5_reference"] = {
            "disabled_overhead_bound_pct": pr5["disabled_overhead_bound_pct"],
            "enabled_overhead_pct": pr5["enabled_overhead_pct"],
        }
        out["enabled_overhead_delta_pct"] = (
            report["enabled_overhead_pct"] - pr5["enabled_overhead_pct"]
        )
    return out


# ----------------------------------------------------------------------
# the snapshot and the table
# ----------------------------------------------------------------------
def telemetry_snapshot(out_path: str | None = None) -> dict[str, Any]:
    """Run all three measurements; optionally write ``BENCH_pr10.json``."""
    snapshot = {
        "_generated_by": (
            "PYTHONPATH=src python -m repro.bench.pr10_telemetry "
            "BENCH_pr10.json"
        ),
        "_note": (
            "harvest = best-of-reps TelemetryHarvestReq drain of a traced "
            "2-process cluster (clock probes + pickle + control RPC); "
            "scrape = 100 simultaneous GET /metrics against one "
            "ExpositionServer, per-request latency; overhead = "
            "repro.bench.obs_overhead re-run diffed against the frozen "
            "PR-5 figures; all on the same host"
        ),
        "harvest": measure_harvest(),
        "scrape": measure_scrape(),
        "overhead": measure_overhead_delta(),
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(snapshot, fh, indent=2)
            fh.write("\n")
    return snapshot


def pr10_telemetry_table(mode: str = "measured") -> TableResult:
    """The snapshot as a render-able table (for ``python -m repro.bench``)."""
    snap = telemetry_snapshot()
    scrape = snap["scrape"]
    overhead = snap["overhead"]
    table = TableResult(
        title="PR-10 telemetry plane: harvest, scrape, overhead (this host)",
        row_label="metric",
        col_label="",
        columns=["value"],
        unit="(mixed)",
        notes=(
            f"scrape: {scrape['clients']} concurrent clients, "
            f"{scrape['body_bytes']} B exposition body; overhead gate "
            f"bound must stay < 5%"
        ),
    )
    for row in snap["harvest"]["rows"]:
        table.rows[
            f"harvest ms, ring capacity {row['ring_capacity']}"
        ] = {"value": row["harvest_ms"]}
    table.rows["scrape p50 (ms)"] = {"value": scrape["p50_ms"]}
    table.rows["scrape p95 (ms)"] = {"value": scrape["p95_ms"]}
    table.rows["scrape max (ms)"] = {"value": scrape["max_ms"]}
    table.rows["disabled overhead bound (%)"] = {
        "value": overhead["micro_op"]["disabled_overhead_bound_pct"]
    }
    table.rows["enabled overhead (%)"] = {
        "value": overhead["micro_op"]["enabled_overhead_pct"]
    }
    if "enabled_overhead_delta_pct" in overhead:
        table.rows["enabled overhead delta vs PR-5 (%)"] = {
            "value": overhead["enabled_overhead_delta_pct"]
        }
    return table


if __name__ == "__main__":  # pragma: no cover - manual driver
    import sys

    out = sys.argv[1] if len(sys.argv) > 1 else None
    print(json.dumps(telemetry_snapshot(out), indent=2))
