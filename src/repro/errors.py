"""Exception hierarchy for the STM reproduction.

The paper's C API reports failures through error codes returned from the
``spd_*`` calls.  The Pythonic API raises exceptions instead; the ``spd``
compatibility layer (:mod:`repro.stm.spd`) converts these back into numeric
codes so the code fragments from Figs. 6-7 of the paper translate directly.

Every exception derives from :class:`StampedeError` so applications can catch
the whole family with one handler.
"""

from __future__ import annotations

__all__ = [
    "StampedeError",
    "STMError",
    "ChannelError",
    "ChannelFullError",
    "ChannelEmptyError",
    "DuplicateTimestampError",
    "NoSuchItemError",
    "ItemGarbageCollectedError",
    "AlreadyConsumedError",
    "ConnectionClosedError",
    "ChannelDestroyedError",
    "VisibilityError",
    "VirtualTimeError",
    "NotOpenError",
    "WouldBlockError",
    "TransportError",
    "TransportClosedError",
    "PacketTooLargeError",
    "AddressSpaceError",
    "NoSuchChannelError",
    "NameInUseError",
    "RealTimeSlippageError",
    "DeadlineMissedError",
    "SimulationError",
    "SimDeadlockError",
    "StmSanError",
]


class StampedeError(Exception):
    """Base class for all errors raised by the Stampede/STM runtime."""


class STMError(StampedeError):
    """Base class for errors raised by Space-Time Memory operations."""


class ChannelError(STMError):
    """Base class for channel-level failures."""


class ChannelFullError(ChannelError):
    """A non-blocking put found a bounded channel at capacity (paper §4.1)."""


class ChannelEmptyError(ChannelError):
    """A non-blocking get found no item satisfying the request."""


class DuplicateTimestampError(ChannelError):
    """A put used a timestamp already present in the channel.

    The paper requires that "a channel cannot have more than one item with
    the same timestamp" (§4.1).
    """


class NoSuchItemError(ChannelError):
    """A get requested a specific timestamp that is not in the channel.

    Carries ``timestamp_range``: the timestamps of the neighbouring available
    items, mirroring the ``timestamp_range`` out-parameter of
    ``spd_channel_get_item``.
    """

    def __init__(self, message: str, timestamp_range: tuple | None = None):
        super().__init__(message)
        #: ``(previous, next)`` neighbouring timestamps (either may be None).
        self.timestamp_range = timestamp_range


class ItemGarbageCollectedError(NoSuchItemError):
    """The requested timestamp is below the channel's GC horizon."""


class AlreadyConsumedError(NoSuchItemError):
    """A get named a timestamp this connection has already consumed.

    Per-connection item state only moves forward (UNSEEN -> OPEN ->
    CONSUMED, paper §4.2), so a consumed item is permanently inaccessible
    through that connection even if it still exists for other connections.
    """


class ConnectionClosedError(STMError):
    """Operation attempted on a detached connection."""


class ChannelDestroyedError(ChannelError):
    """Operation attempted on a destroyed channel."""


class VisibilityError(STMError):
    """A put/consume violated the thread's visibility rules (paper §4.2).

    A thread may only put items with timestamps >= its current visibility,
    which is the minimum of its virtual time and the timestamps of items it
    currently has open on input connections.
    """


class VirtualTimeError(STMError):
    """Illegal virtual-time manipulation (e.g. moving virtual time backwards
    below the thread's current visibility)."""


class NotOpenError(STMError):
    """Consume of an item that is not accessible on this connection."""


class WouldBlockError(STMError):
    """Internal marker: a kernel operation would block.

    The runtimes catch this and park the calling thread/task; it escapes to
    user code only through the non-blocking API variants.
    """


class TransportError(StampedeError):
    """Base class for CLF transport failures."""


class TransportClosedError(TransportError):
    """Send/receive on a closed CLF endpoint."""


class PacketTooLargeError(TransportError):
    """A single CLF packet exceeded the MTU (8152 bytes, paper §8.1)."""


class AddressSpaceError(StampedeError):
    """Errors in address-space management or cross-space dispatch."""


class NoSuchChannelError(STMError):
    """Attach attempted on an unknown channel id or name."""


class NameInUseError(STMError):
    """Channel created with a name that is already registered."""


class RealTimeSlippageError(StampedeError):
    """A paced thread missed its tick by more than the declared tolerance and
    no exception handler was registered (paper §4.3)."""

    def __init__(self, message: str, lateness: float = 0.0):
        super().__init__(message)
        #: seconds by which the tick was missed.
        self.lateness = lateness


class DeadlineMissedError(RealTimeSlippageError):
    """Alias used by the pacing API when a hard deadline is configured."""


class StmSanError(StampedeError):
    """The STMSAN runtime sanitizer detected a protocol violation.

    Raised only while the sanitizer is enabled (``STMSAN=1``), for
    violations that cannot be merely recorded: touching a reclaimed
    payload's tombstone, or re-acquiring a non-reentrant runtime lock
    (which would deadlock for real).  Carries the stack that reclaimed or
    acquired the resource, so the report shows both sides of the race.
    """

    def __init__(self, message: str, stack: str = ""):
        super().__init__(message)
        #: formatted stack of the reclaiming/acquiring side (may be empty).
        self.stack = stack


class SimulationError(StampedeError):
    """Base class for discrete-event simulator errors."""


class SimDeadlockError(SimulationError):
    """The simulator ran out of runnable tasks while tasks are still blocked.

    Raised with a diagnostic listing each blocked task and what it waits on.
    """
